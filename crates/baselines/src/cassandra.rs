//! The Cassandra-like baseline: a wide-row store with memtable + SSTables.
//!
//! Section 7.1 stores data points in Cassandra with primary key
//! `(Tid, TS, Value)` and the denormalized dimensions appended to every
//! row — the per-row repetition (plus row headers) is why Cassandra is the
//! largest format in Figures 14–15 despite SSTable block compression (LZSS
//! here, standing in for LZ4).

use std::collections::BTreeMap;

use mdb_encoding::{lzss, varint};
use mdb_types::{MdbError, Result, Tid, Timestamp, Value};

use crate::{Accum, TimeSeriesStore};

/// Rows per SSTable block before compression.
const BLOCK_ROWS: usize = 4096;

#[derive(Debug)]
struct SsTableBlock {
    min_ts: Timestamp,
    max_ts: Timestamp,
    min_tid: Tid,
    max_tid: Tid,
    rows: usize,
    compressed: Vec<u8>,
}

/// One decoded row.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    tid: Tid,
    ts: Timestamp,
    value: Value,
    dims: String,
}

fn encode_rows(rows: &[Row]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in rows {
        varint::write_u64(&mut out, u64::from(r.tid));
        varint::write_i64(&mut out, r.ts);
        // Cassandra stores a microsecond write timestamp and liveness info
        // per cell; model it as one 8-byte stamp + flags per row (it varies
        // row to row, so it compresses poorly — a real contributor to
        // Cassandra's footprint in Figures 14–15).
        let write_ts = (r.ts as u64)
            .wrapping_mul(1_000)
            .wrapping_add(u64::from(r.tid) * 7919);
        out.extend_from_slice(&write_ts.to_le_bytes());
        out.push(0);
        out.extend_from_slice(&r.value.to_le_bytes());
        varint::write_u64(&mut out, r.dims.len() as u64);
        out.extend_from_slice(r.dims.as_bytes());
    }
    out
}

fn decode_rows(mut input: &[u8], count: usize) -> Result<Vec<Row>> {
    let corrupt = || MdbError::Corrupt("bad sstable block".into());
    let mut rows = Vec::with_capacity(count);
    for _ in 0..count {
        let tid = varint::read_u64(&mut input).ok_or_else(corrupt)? as Tid;
        let ts = varint::read_i64(&mut input).ok_or_else(corrupt)?;
        if input.len() < 13 {
            return Err(corrupt());
        }
        input = &input[9..]; // skip write timestamp + flags
        let value = Value::from_le_bytes(input[..4].try_into().unwrap());
        input = &input[4..];
        let len = varint::read_u64(&mut input).ok_or_else(corrupt)? as usize;
        if len > input.len() {
            return Err(corrupt());
        }
        let dims = String::from_utf8(input[..len].to_vec()).map_err(|_| corrupt())?;
        input = &input[len..];
        rows.push(Row {
            tid,
            ts,
            value,
            dims,
        });
    }
    Ok(rows)
}

/// The Cassandra-like store.
#[derive(Debug, Default)]
pub struct CassandraLike {
    /// Memtable ordered by the primary key (Tid, TS).
    memtable: BTreeMap<(Tid, Timestamp), Row>,
    sstables: Vec<SsTableBlock>,
}

impl CassandraLike {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn flush_memtable(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let rows: Vec<Row> = std::mem::take(&mut self.memtable).into_values().collect();
        for chunk in rows.chunks(BLOCK_ROWS) {
            let encoded = encode_rows(chunk);
            self.sstables.push(SsTableBlock {
                min_ts: chunk.iter().map(|r| r.ts).min().unwrap(),
                max_ts: chunk.iter().map(|r| r.ts).max().unwrap(),
                min_tid: chunk.iter().map(|r| r.tid).min().unwrap(),
                max_tid: chunk.iter().map(|r| r.tid).max().unwrap(),
                rows: chunk.len(),
                compressed: lzss::compress(&encoded),
            });
        }
    }

    fn for_each_row(
        &self,
        tids: Option<&[Tid]>,
        from: Timestamp,
        to: Timestamp,
        f: &mut dyn FnMut(&Row),
    ) -> Result<()> {
        for block in &self.sstables {
            if block.max_ts < from || block.min_ts > to {
                continue;
            }
            if let Some(list) = tids {
                if !list
                    .iter()
                    .any(|t| (block.min_tid..=block.max_tid).contains(t))
                {
                    continue;
                }
            }
            let bytes = lzss::decompress(&block.compressed)
                .ok_or_else(|| MdbError::Corrupt("bad sstable block".into()))?;
            for row in decode_rows(&bytes, block.rows)? {
                if row.ts >= from && row.ts <= to && tids.is_none_or(|list| list.contains(&row.tid))
                {
                    f(&row);
                }
            }
        }
        for row in self.memtable.values() {
            if row.ts >= from && row.ts <= to && tids.is_none_or(|list| list.contains(&row.tid)) {
                f(row);
            }
        }
        Ok(())
    }
}

impl TimeSeriesStore for CassandraLike {
    fn name(&self) -> &'static str {
        "Cassandra-like"
    }

    fn ingest(&mut self, tid: Tid, ts: Timestamp, value: Value, dims: &[&str]) -> Result<()> {
        self.memtable.insert(
            (tid, ts),
            Row {
                tid,
                ts,
                value,
                dims: dims.join(","),
            },
        );
        if self.memtable.len() >= BLOCK_ROWS * 4 {
            self.flush_memtable();
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.flush_memtable();
        Ok(())
    }

    fn size_bytes(&self) -> u64 {
        let tables: usize = self.sstables.iter().map(|b| b.compressed.len() + 36).sum();
        let memtable: usize = self.memtable.values().map(|r| 16 + r.dims.len()).sum();
        (tables + memtable) as u64
    }

    fn supports_online_analytics(&self) -> bool {
        true
    }

    fn aggregate(&self, tids: Option<&[Tid]>, from: Timestamp, to: Timestamp) -> Result<Accum> {
        let mut acc = Accum::default();
        self.for_each_row(tids, from, to, &mut |row| acc.add(row.value))?;
        Ok(acc)
    }

    fn scan_points(
        &self,
        tid: Tid,
        from: Timestamp,
        to: Timestamp,
        f: &mut dyn FnMut(Timestamp, Value),
    ) -> Result<()> {
        let list = [tid];
        let mut points = Vec::new();
        self.for_each_row(Some(&list), from, to, &mut |row| {
            points.push((row.ts, row.value))
        })?;
        points.sort_by_key(|p| p.0);
        for (ts, v) in points {
            f(ts, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn conformance_suite() {
        let mut store = CassandraLike::new();
        conformance::run_all(&mut store);
        assert!(store.supports_online_analytics());
    }

    #[test]
    fn memtable_is_queryable_before_flush() {
        let mut store = CassandraLike::new();
        store.ingest(1, 100, 2.0, &["x"]).unwrap();
        assert_eq!(store.aggregate(None, 0, 200).unwrap().count, 1);
    }

    #[test]
    fn rows_round_trip_through_blocks() {
        let rows: Vec<Row> = (0..100)
            .map(|i| Row {
                tid: i % 5 + 1,
                ts: i as i64 * 10,
                value: i as f32,
                dims: format!("d{i}"),
            })
            .collect();
        let encoded = encode_rows(&rows);
        let decoded = decode_rows(&encoded, 100).unwrap();
        assert_eq!(decoded, rows);
        assert!(decode_rows(&encoded[..10], 100).is_err());
    }

    #[test]
    fn per_row_dimensions_cost_even_after_compression() {
        // The same data with long vs short dimension strings: the long ones
        // must cost measurably more even though block compression absorbs
        // most of the repetition — the per-row denormalization overhead the
        // paper exploits.
        let mut short = CassandraLike::new();
        let mut long = CassandraLike::new();
        for i in 0..5_000i64 {
            let v = (i as f32).sin();
            short.ingest(1, i * 100, v, &["a"]).unwrap();
            long.ingest(
                1,
                i * 100,
                v,
                &[
                    "WindTurbineWithAVeryLongTypeName",
                    &format!("entity-name-{}", i % 7),
                    "ProductionMWhCategory",
                ],
            )
            .unwrap();
        }
        short.flush().unwrap();
        long.flush().unwrap();
        assert!(
            long.size_bytes() > short.size_bytes() * 11 / 10,
            "{} vs {}",
            long.size_bytes(),
            short.size_bytes()
        );
    }

    #[test]
    fn upserts_overwrite_by_primary_key() {
        let mut store = CassandraLike::new();
        store.ingest(1, 100, 1.0, &["x"]).unwrap();
        store.ingest(1, 100, 9.0, &["x"]).unwrap();
        let acc = store.aggregate(None, 0, 200).unwrap();
        assert_eq!(acc.count, 1);
        assert_eq!(acc.max, 9.0);
    }
}

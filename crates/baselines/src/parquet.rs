//! The Parquet-like baseline: a columnar file format, one file per series.
//!
//! Section 7.1 creates one Parquet file per series in a `Tid=n` folder so
//! the query engine can prune by Tid without opening files. Within a file,
//! rows are grouped into row groups; each column is encoded independently —
//! timestamps with delta/delta-of-delta + varint, values as LZSS-compressed
//! little-endian floats, and the denormalized dimensions with a dictionary —
//! and row groups carry min/max timestamp statistics for pruning. Files only
//! become readable when closed, so the format does not support online
//! analytics (Figure 13's discussion).

use std::collections::BTreeMap;

use mdb_encoding::{delta, dict, lzss};
use mdb_types::{MdbError, Result, Tid, Timestamp, Value};

use crate::{Accum, TimeSeriesStore};

/// Rows per row group (Parquet defaults to much larger groups; scaled to the
/// synthetic data sizes).
const ROW_GROUP: usize = 10_000;

#[derive(Debug)]
struct RowGroup {
    min_ts: Timestamp,
    max_ts: Timestamp,
    rows: usize,
    ts_column: Vec<u8>,
    value_column: Vec<u8>,
    dims_column: Vec<u8>,
}

#[derive(Debug, Default)]
struct SeriesFile {
    groups: Vec<RowGroup>,
    pending_ts: Vec<Timestamp>,
    pending_values: Vec<Value>,
    pending_dims: Vec<String>,
}

impl SeriesFile {
    fn seal(&mut self) {
        if self.pending_ts.is_empty() {
            return;
        }
        let raw_values: Vec<u8> = self
            .pending_values
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let mut dims = dict::DictEncoder::new();
        for d in &self.pending_dims {
            dims.push(d);
        }
        self.groups.push(RowGroup {
            min_ts: self.pending_ts[0],
            max_ts: *self.pending_ts.last().unwrap(),
            rows: self.pending_ts.len(),
            ts_column: delta::encode(&self.pending_ts),
            value_column: lzss::compress(&raw_values),
            dims_column: dims.finish(),
        });
        self.pending_ts.clear();
        self.pending_values.clear();
        self.pending_dims.clear();
    }

    fn for_each(
        &self,
        from: Timestamp,
        to: Timestamp,
        f: &mut dyn FnMut(Timestamp, Value),
    ) -> Result<()> {
        for group in &self.groups {
            if group.max_ts < from || group.min_ts > to {
                continue; // row-group statistics pruning
            }
            let ts = delta::decode(&mut group.ts_column.as_slice())
                .ok_or_else(|| MdbError::Corrupt("bad timestamp column".into()))?;
            let raw = lzss::decompress(&group.value_column)
                .ok_or_else(|| MdbError::Corrupt("bad value column".into()))?;
            if raw.len() != group.rows * 4 || ts.len() != group.rows {
                return Err(MdbError::Corrupt("row group shape mismatch".into()));
            }
            for (i, &t) in ts.iter().enumerate() {
                if t >= from && t <= to {
                    let v = Value::from_le_bytes(raw[i * 4..i * 4 + 4].try_into().unwrap());
                    f(t, v);
                }
            }
        }
        Ok(())
    }
}

/// The Parquet-like store.
#[derive(Debug, Default)]
pub struct ParquetLike {
    files: BTreeMap<Tid, SeriesFile>,
}

impl ParquetLike {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TimeSeriesStore for ParquetLike {
    fn name(&self) -> &'static str {
        "Parquet-like"
    }

    fn ingest(&mut self, tid: Tid, ts: Timestamp, value: Value, dims: &[&str]) -> Result<()> {
        let file = self.files.entry(tid).or_default();
        file.pending_ts.push(ts);
        file.pending_values.push(value);
        file.pending_dims.push(dims.join(","));
        if file.pending_ts.len() >= ROW_GROUP {
            file.seal();
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        for file in self.files.values_mut() {
            file.seal();
        }
        Ok(())
    }

    fn size_bytes(&self) -> u64 {
        self.files
            .values()
            .flat_map(|f| &f.groups)
            // 24 bytes of footer statistics per row group.
            .map(|g| (g.ts_column.len() + g.value_column.len() + g.dims_column.len() + 24) as u64)
            .sum()
    }

    fn supports_online_analytics(&self) -> bool {
        // "Parquet and ORC … cannot be queried before a file is completely
        // written" — unsealed rows are invisible to queries.
        false
    }

    fn aggregate(&self, tids: Option<&[Tid]>, from: Timestamp, to: Timestamp) -> Result<Accum> {
        let mut acc = Accum::default();
        match tids {
            Some(list) => {
                for tid in list {
                    // File-per-series: pruning by Tid skips whole files.
                    if let Some(file) = self.files.get(tid) {
                        file.for_each(from, to, &mut |_, v| acc.add(v))?;
                    }
                }
            }
            None => {
                for file in self.files.values() {
                    file.for_each(from, to, &mut |_, v| acc.add(v))?;
                }
            }
        }
        Ok(acc)
    }

    fn scan_points(
        &self,
        tid: Tid,
        from: Timestamp,
        to: Timestamp,
        f: &mut dyn FnMut(Timestamp, Value),
    ) -> Result<()> {
        if let Some(file) = self.files.get(&tid) {
            file.for_each(from, to, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn conformance_suite() {
        let mut store = ParquetLike::new();
        conformance::run_all(&mut store);
        assert!(!store.supports_online_analytics());
    }

    #[test]
    fn unsealed_rows_are_invisible() {
        let mut store = ParquetLike::new();
        store.ingest(1, 100, 1.0, &["x"]).unwrap();
        assert_eq!(store.aggregate(None, 0, 1_000).unwrap().count, 0);
        store.flush().unwrap();
        assert_eq!(store.aggregate(None, 0, 1_000).unwrap().count, 1);
    }

    #[test]
    fn dictionary_makes_dimensions_cheap() {
        // Constant dimension strings per series compress to almost nothing,
        // unlike the Cassandra-like per-row copies.
        let mut with_dims = ParquetLike::new();
        let mut without = ParquetLike::new();
        for i in 0..20_000i64 {
            let v = (i as f32).sin();
            with_dims
                .ingest(
                    1,
                    i * 100,
                    v,
                    &[
                        "WindTurbineWithAVeryLongTypeName",
                        "entity1",
                        "ProductionMWh",
                    ],
                )
                .unwrap();
            without.ingest(1, i * 100, v, &[]).unwrap();
        }
        with_dims.flush().unwrap();
        without.flush().unwrap();
        let overhead = with_dims.size_bytes() as f64 / without.size_bytes() as f64;
        assert!(overhead < 1.05, "dimension overhead {overhead}");
    }

    #[test]
    fn row_group_stats_prune_time_ranges() {
        let mut store = ParquetLike::new();
        for i in 0..25_000i64 {
            store.ingest(1, i * 100, i as f32, &["d"]).unwrap();
        }
        store.flush().unwrap();
        assert_eq!(store.files[&1].groups.len(), 3);
        let mut n = 0;
        store
            .scan_points(1, 0, 999_900, &mut |_, _| n += 1)
            .unwrap();
        assert_eq!(n, 10_000);
    }

    #[test]
    fn regular_timestamps_compress_to_near_nothing() {
        let mut store = ParquetLike::new();
        for i in 0..10_000i64 {
            store.ingest(1, i * 60_000, 42.0, &["d"]).unwrap();
        }
        store.flush().unwrap();
        let g = &store.files[&1].groups[0];
        assert!(
            g.ts_column.len() < 11_000,
            "delta-encoded ts: {}",
            g.ts_column.len()
        );
        // Constant values LZSS-compress extremely well too.
        assert!(g.value_column.len() < 2_000, "{}", g.value_column.len());
    }
}

//! The comparison systems of the evaluation (Section 7.1), re-implemented
//! as storage formats behind one trait.
//!
//! The paper compares ModelarDB+ against InfluxDB, Apache Cassandra, Apache
//! Parquet, and Apache ORC, storing data points with the Data Point View's
//! schema `(Tid, TS, Value, dimensions…)`. None of those systems can be
//! embedded here, so each is substituted with a faithful storage-engine
//! *format*: the encodings each system's engine uses determine both its
//! on-disk footprint (Figures 14–15) and its scan behaviour (Figures 19–28),
//! which is what the evaluation measures.
//!
//! * [`influx::InfluxLike`] — TSM-style: per-series blocks, delta-of-delta
//!   timestamps, Gorilla-XOR values, tags stored once per series.
//! * [`cassandra::CassandraLike`] — wide-row store: `(Tid, TS)` keyed rows
//!   with *per-row* denormalized dimensions, memtable + LZSS-compressed
//!   SSTable blocks (why Cassandra is the largest format in the paper).
//! * [`parquet::ParquetLike`] — columnar: one file per series (as §7.1
//!   configures), delta+varint timestamp column, LZSS-compressed value
//!   pages, dictionary-encoded dimension columns, row-group min/max stats;
//!   not queryable before a file is fully written (no online analytics).
//! * [`orc::OrcLike`] — stripes with RLE-encoded timestamp deltas and
//!   LZSS value streams.

pub mod cassandra;
pub mod influx;
pub mod orc;
pub mod parquet;

use mdb_types::{Result, Tid, Timestamp, Value};

pub use cassandra::CassandraLike;
pub use influx::InfluxLike;
pub use orc::OrcLike;
pub use parquet::ParquetLike;

/// Aggregate scan result (sum/count/min/max cover the paper's aggregate
/// functions; AVG follows from sum and count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accum {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Default for Accum {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Accum {
    /// Folds one value in.
    pub fn add(&mut self, v: Value) {
        self.count += 1;
        self.sum += f64::from(v);
        self.min = self.min.min(f64::from(v));
        self.max = self.max.max(f64::from(v));
    }

    /// Merges another accumulator.
    pub fn merge(&mut self, other: &Accum) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A baseline time series store. Dimensions are passed denormalized with
/// every data point, matching how the paper feeds the existing formats
/// ("the denormalized dimensions are appended to the data points using an
/// in-memory cache").
pub trait TimeSeriesStore: Send {
    /// The system this format stands in for.
    fn name(&self) -> &'static str;

    /// Appends one data point with its denormalized dimension members.
    fn ingest(&mut self, tid: Tid, ts: Timestamp, value: Value, dims: &[&str]) -> Result<()>;

    /// Finishes all pending blocks/files.
    fn flush(&mut self) -> Result<()>;

    /// Total stored bytes (the Figures 14–15 metric).
    fn size_bytes(&self) -> u64;

    /// Whether the format can answer queries while ingesting (InfluxDB and
    /// Cassandra can; Parquet and ORC "cannot be queried before a file is
    /// completely written", Section 7.3).
    fn supports_online_analytics(&self) -> bool;

    /// Aggregates values of `tids` (all series when `None`) in
    /// `[from, to]` — the S-AGG/L-AGG query shape.
    fn aggregate(&self, tids: Option<&[Tid]>, from: Timestamp, to: Timestamp) -> Result<Accum>;

    /// Streams the points of one series in `[from, to]` — the P/R shape.
    fn scan_points(
        &self,
        tid: Tid,
        from: Timestamp,
        to: Timestamp,
        f: &mut dyn FnMut(Timestamp, Value),
    ) -> Result<()>;
}

#[cfg(test)]
pub(crate) mod conformance {
    //! A conformance suite every baseline must pass, exercised from each
    //! format's test module.

    use super::*;

    pub fn ingest_sample(store: &mut dyn TimeSeriesStore) {
        for tid in 1..=3u32 {
            for i in 0..500i64 {
                let ts = 1_000_000 + i * 100;
                let value = (i as f32 * 0.01).sin() * 50.0 + tid as f32 * 100.0;
                store
                    .ingest(
                        tid,
                        ts,
                        value,
                        &["WindTurbine", &format!("entity{tid}"), "ProductionMWh"],
                    )
                    .unwrap();
            }
        }
        store.flush().unwrap();
    }

    pub fn check_aggregate_full(store: &dyn TimeSeriesStore) {
        let acc = store.aggregate(None, i64::MIN, i64::MAX).unwrap();
        assert_eq!(acc.count, 1500);
        // Ground truth sum.
        let mut expected = 0.0f64;
        for tid in 1..=3u32 {
            for i in 0..500i64 {
                expected += f64::from((i as f32 * 0.01).sin() * 50.0 + tid as f32 * 100.0);
            }
        }
        assert!(
            (acc.sum - expected).abs() < 1e-3 * expected.abs(),
            "{} vs {expected}",
            acc.sum
        );
    }

    pub fn check_aggregate_filtered(store: &dyn TimeSeriesStore) {
        let acc = store.aggregate(Some(&[2]), i64::MIN, i64::MAX).unwrap();
        assert_eq!(acc.count, 500);
        assert!(acc.min >= 150.0 && acc.max <= 250.0, "{acc:?}");
        // Time-restricted: first 100 ticks only.
        let acc = store
            .aggregate(Some(&[2]), 1_000_000, 1_000_000 + 99 * 100)
            .unwrap();
        assert_eq!(acc.count, 100);
        // Empty range.
        let acc = store.aggregate(Some(&[2]), 5, 4).unwrap();
        assert_eq!(acc.count, 0);
    }

    pub fn check_point_scan(store: &dyn TimeSeriesStore) {
        let mut points = Vec::new();
        store
            .scan_points(
                1,
                1_000_000 + 10 * 100,
                1_000_000 + 19 * 100,
                &mut |ts, v| points.push((ts, v)),
            )
            .unwrap();
        assert_eq!(points.len(), 10);
        assert_eq!(points[0].0, 1_000_000 + 1000);
        let expected = (10.0f32 * 0.01).sin() * 50.0 + 100.0;
        assert!((points[0].1 - expected).abs() < 1e-4);
        // Points arrive in time order.
        assert!(points.windows(2).all(|w| w[0].0 < w[1].0));
    }

    pub fn run_all(store: &mut dyn TimeSeriesStore) {
        ingest_sample(store);
        assert!(store.size_bytes() > 0);
        check_aggregate_full(store);
        check_aggregate_filtered(store);
        check_point_scan(store);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accum_basics() {
        let mut a = Accum::default();
        a.add(1.0);
        a.add(-3.0);
        assert_eq!(a.count, 2);
        assert_eq!(a.sum, -2.0);
        assert_eq!(a.min, -3.0);
        assert_eq!(a.max, 1.0);
        let mut b = Accum::default();
        b.add(10.0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.max, 10.0);
    }

    #[test]
    fn relative_sizes_match_the_papers_shape() {
        // The EP-flavoured shape of Figure 14: Cassandra largest; the
        // columnar formats and InfluxDB's XOR encoding much smaller.
        let ds = mdb_datagen::ep(11, mdb_datagen::Scale::tiny()).unwrap();
        let mut influx = InfluxLike::new();
        let mut cassandra = CassandraLike::new();
        let mut parquet = ParquetLike::new();
        let mut orc = OrcLike::new();
        let stores: &mut [&mut dyn TimeSeriesStore] =
            &mut [&mut influx, &mut cassandra, &mut parquet, &mut orc];
        for tick in 0..ds.scale.ticks {
            let ts = ds.timestamp(tick);
            for (i, v) in ds.row(tick).into_iter().enumerate() {
                let Some(v) = v else { continue };
                let tid = i as u32 + 1;
                let entity = format!("entity{}", ds.cluster_of(tid));
                let dims = ["WindTurbine", entity.as_str(), "ProductionMWh"];
                for store in stores.iter_mut() {
                    store.ingest(tid, ts, v, &dims).unwrap();
                }
            }
        }
        for store in stores.iter_mut() {
            store.flush().unwrap();
        }
        let (i, c, p, o) = (
            influx.size_bytes(),
            cassandra.size_bytes(),
            parquet.size_bytes(),
            orc.size_bytes(),
        );
        assert!(
            c > i && c > p && c > o,
            "cassandra must be largest: i={i} c={c} p={p} o={o}"
        );
        assert!(
            p < c / 2,
            "columnar beats row store by a wide margin: p={p} c={c}"
        );
    }
}

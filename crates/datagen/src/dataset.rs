//! The EP- and EH-like data set generators.

use std::collections::HashMap;

use mdb_partitioner::CorrelationSpec;
use mdb_types::{
    DimensionSchema, Dimensions, Result, RowBatch, Tid, TimeSeriesMeta, Timestamp, Value,
};

use crate::hash_noise;

/// How large a data set to generate (laptop-scale stand-ins for the paper's
/// hundreds of GiB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of correlated clusters (≙ entities × measure categories).
    pub clusters: usize,
    /// Series per cluster.
    pub series_per_cluster: usize,
    /// Ticks to generate.
    pub ticks: u64,
}

impl Scale {
    /// A small scale for tests.
    pub fn tiny() -> Self {
        Self {
            clusters: 2,
            series_per_cluster: 3,
            ticks: 500,
        }
    }

    /// The default scale for benchmarks.
    pub fn small() -> Self {
        Self {
            clusters: 8,
            series_per_cluster: 4,
            ticks: 5_000,
        }
    }

    /// A larger scale for the scale-out experiments.
    pub fn medium() -> Self {
        Self {
            clusters: 16,
            series_per_cluster: 4,
            ticks: 20_000,
        }
    }

    /// Total number of series.
    pub fn n_series(&self) -> usize {
        self.clusters * self.series_per_cluster
    }
}

/// Shape parameters distinguishing EP from EH.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetProfile {
    /// Sampling interval in ms (EP: 60 000; EH-like: 100).
    pub si_ms: i64,
    /// Amplitude of the shared cluster signal.
    pub shared_amplitude: f64,
    /// Per-series independent noise amplitude (relative to shared).
    pub series_noise: f64,
    /// Probability that a series is in a gap during any given window.
    pub gap_probability: f64,
    /// Length of a gap window, in ticks.
    pub gap_window: u64,
}

/// A deterministic synthetic data set.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub name: String,
    pub seed: u64,
    pub scale: Scale,
    pub profile: DatasetProfile,
    pub series: Vec<TimeSeriesMeta>,
    pub dimensions: Dimensions,
    pub sources: HashMap<Tid, String>,
    /// First timestamp (2021-01-01 00:00 UTC by default).
    pub start: Timestamp,
    correlation: CorrelationSpec,
}

const DEFAULT_START: Timestamp = 1_609_459_200_000; // 2021-01-01T00:00:00Z

impl Dataset {
    /// Number of series.
    pub fn n_series(&self) -> usize {
        self.series.len()
    }

    /// All tids (1-based, dense).
    pub fn tids(&self) -> Vec<Tid> {
        (1..=self.n_series() as Tid).collect()
    }

    /// The timestamp of `tick`.
    pub fn timestamp(&self, tick: u64) -> Timestamp {
        self.start + tick as i64 * self.profile.si_ms
    }

    /// The cluster a tid belongs to (0-based).
    pub fn cluster_of(&self, tid: Tid) -> usize {
        (tid as usize - 1) / self.scale.series_per_cluster
    }

    /// The value of `tid` at `tick`, or `None` during a gap.
    pub fn value(&self, tid: Tid, tick: u64) -> Option<Value> {
        let p = &self.profile;
        // Gap windows: a hash per (tid, window) decides sensor dropout.
        let window = tick / p.gap_window.max(1);
        if hash_noise(self.seed ^ 0xDEAD, u64::from(tid), window).abs() < p.gap_probability {
            return None;
        }
        let cluster = self.cluster_of(tid) as u64;
        let t = tick as f64;
        // Shared cluster profile: daily-ish cycle + slow weather drift +
        // occasional regime level (changes every ~517 ticks).
        let day_period = (86_400_000 / p.si_ms.max(1)) as f64;
        let cycle = (t * std::f64::consts::TAU / day_period.max(16.0)).sin();
        let drift = (t * std::f64::consts::TAU / (day_period.max(16.0) * 7.3)).sin() * 0.5;
        let regime = hash_noise(self.seed ^ 0xBEEF, cluster, tick / 517) * 0.8;
        let shared = (cycle + drift + regime) * p.shared_amplitude;
        // Per-series personality: a small offset (redundant meters on one
        // entity read almost identically).
        let offset = hash_noise(self.seed ^ 0xF00D, u64::from(tid), 0) * p.shared_amplitude * 0.008;
        // Independent noise, smoothed over 3 ticks so EH is not pure white.
        let noise = (hash_noise(self.seed, u64::from(tid), tick)
            + hash_noise(self.seed, u64::from(tid), tick.saturating_sub(1)))
            * 0.5
            * p.series_noise
            * p.shared_amplitude;
        let base = 100.0 * (1.0 + cluster as f64 * 0.01);
        Some((base + shared + offset + noise) as Value)
    }

    /// One full row: `row[tid − 1]` is the value of `tid` at `tick`.
    pub fn row(&self, tick: u64) -> Vec<Option<Value>> {
        (1..=self.n_series() as Tid)
            .map(|tid| self.value(tid, tick))
            .collect()
    }

    /// Fills `batch` with the ticks `start_tick .. start_tick + len`,
    /// reusing the batch's allocations (the steady-state bulk-ingestion
    /// loop: fill, ship, clear, repeat).
    ///
    /// # Panics
    ///
    /// Panics when the batch was built for a different number of series.
    pub fn fill_batch(&self, start_tick: u64, len: u64, batch: &mut RowBatch) {
        assert_eq!(
            batch.n_series(),
            self.n_series(),
            "batch width must match the data set"
        );
        batch.clear();
        for tick in start_tick..start_tick + len {
            batch.push_row_with(self.timestamp(tick), |s| self.value(s as Tid + 1, tick));
        }
    }

    /// A freshly allocated columnar batch of the ticks
    /// `start_tick .. start_tick + len`.
    pub fn batch(&self, start_tick: u64, len: u64) -> RowBatch {
        let mut batch = RowBatch::with_capacity(self.n_series(), len as usize);
        self.fill_batch(start_tick, len, &mut batch);
        batch
    }

    /// Iterates the first `ticks` ticks as columnar batches of up to
    /// `batch_size` rows — the bulk-ingestion driver for benchmarks.
    pub fn batches(&self, ticks: u64, batch_size: u64) -> Batches<'_> {
        Batches {
            dataset: self,
            next: 0,
            end: ticks,
            batch_size: batch_size.max(1),
        }
    }

    /// The correlation hints the paper's evaluation uses for this data set.
    pub fn correlation_spec(&self) -> CorrelationSpec {
        self.correlation.clone()
    }

    /// Total data points (excluding gaps) in `ticks` ticks — used to report
    /// ingestion rates.
    pub fn count_data_points(&self, ticks: u64) -> u64 {
        let mut n = 0;
        for tick in 0..ticks {
            n += self.row(tick).iter().flatten().count() as u64;
        }
        n
    }
}

/// Iterator over a data set's ticks as columnar [`RowBatch`]es; see
/// [`Dataset::batches`].
#[derive(Debug)]
pub struct Batches<'a> {
    dataset: &'a Dataset,
    next: u64,
    end: u64,
    batch_size: u64,
}

impl Iterator for Batches<'_> {
    type Item = RowBatch;

    fn next(&mut self) -> Option<RowBatch> {
        if self.next >= self.end {
            return None;
        }
        let len = self.batch_size.min(self.end - self.next);
        let batch = self.dataset.batch(self.next, len);
        self.next += len;
        Some(batch)
    }
}

/// The EP-like data set: strongly correlated clusters of energy-production
/// series at SI = 60 s with dimensions `Production: Entity → Type` and
/// `Measure: Concrete → Category`.
pub fn ep(seed: u64, scale: Scale) -> Result<Dataset> {
    let mut dimensions = Dimensions::new();
    let production = dimensions.add_dimension(DimensionSchema::from_leaf_up(
        "Production",
        vec!["Entity".into(), "Type".into()],
    )?)?;
    let measure = dimensions.add_dimension(DimensionSchema::from_leaf_up(
        "Measure",
        vec!["Concrete".into(), "Category".into()],
    )?)?;
    let mut series = Vec::new();
    let mut sources = HashMap::new();
    let si = 60_000;
    for tid in 1..=scale.n_series() as Tid {
        let cluster = (tid as usize - 1) / scale.series_per_cluster;
        let member = (tid as usize - 1) % scale.series_per_cluster;
        // One entity per cluster; within a cluster the series are the
        // entity's redundant production meters (same concrete measure).
        let entity = format!("entity{cluster}");
        let kind = if cluster.is_multiple_of(2) {
            "WindTurbine"
        } else {
            "SolarPlant"
        };
        dimensions.set_members(tid, production, &[kind, &entity])?;
        dimensions.set_members(tid, measure, &["ProductionMWh", &format!("meter{member}")])?;
        series.push(TimeSeriesMeta::new(tid, si));
        sources.insert(tid, format!("{entity}_meter{member}.gz"));
    }
    // §7.3: "Correlation is set as Production 0; Measure 1 ProductionMWh".
    let mut correlation = CorrelationSpec::none();
    correlation.add_clause("Production 0; Measure 1 ProductionMWh")?;
    Ok(Dataset {
        name: "EP".into(),
        seed,
        scale,
        profile: DatasetProfile {
            si_ms: si,
            shared_amplitude: 40.0,
            series_noise: 0.01,
            gap_probability: 0.01,
            gap_window: 64,
        },
        series,
        dimensions,
        sources,
        start: DEFAULT_START,
        correlation,
    })
}

/// The EH-like data set: weakly correlated high-frequency series with
/// dimensions `Location: Entity → Park → Country` and `Measure`.
pub fn eh(seed: u64, scale: Scale) -> Result<Dataset> {
    let mut dimensions = Dimensions::new();
    let location = dimensions.add_dimension(DimensionSchema::from_leaf_up(
        "Location",
        vec!["Entity".into(), "Park".into(), "Country".into()],
    )?)?;
    let measure = dimensions.add_dimension(DimensionSchema::from_leaf_up(
        "Measure",
        vec!["Concrete".into(), "Category".into()],
    )?)?;
    let mut series = Vec::new();
    let mut sources = HashMap::new();
    let si = 100;
    for tid in 1..=scale.n_series() as Tid {
        let cluster = (tid as usize - 1) / scale.series_per_cluster;
        let member = (tid as usize - 1) % scale.series_per_cluster;
        let park = format!("park{}", cluster / 2);
        let entity = format!("entity{cluster}");
        dimensions.set_members(tid, location, &["Denmark", &park, &entity])?;
        dimensions.set_members(tid, measure, &["Electrical", &format!("signal{member}")])?;
        series.push(TimeSeriesMeta::new(tid, si));
        sources.insert(tid, format!("{park}_{entity}_s{member}.gz"));
    }
    // §7.3: EH uses the lowest-distance rule of thumb.
    let correlation = CorrelationSpec::distance(mdb_partitioner::lowest_distance(&dimensions));
    Ok(Dataset {
        name: "EH".into(),
        seed,
        scale,
        profile: DatasetProfile {
            si_ms: si,
            shared_amplitude: 20.0,
            series_noise: 0.28,
            gap_probability: 0.005,
            gap_window: 256,
        },
        series,
        dimensions,
        sources,
        start: DEFAULT_START,
        correlation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ep(7, Scale::tiny()).unwrap();
        let b = ep(7, Scale::tiny()).unwrap();
        for tick in 0..100 {
            assert_eq!(a.row(tick), b.row(tick));
        }
        let c = ep(8, Scale::tiny()).unwrap();
        let differs = (0..100).any(|t| a.row(t) != c.row(t));
        assert!(differs, "different seeds must differ");
    }

    #[test]
    fn ep_clusters_are_strongly_correlated() {
        let ds = ep(42, Scale::tiny()).unwrap();
        // Pearson-ish check: two series in the same cluster track each other
        // far more closely than two in different clusters.
        let spread = |a: Tid, b: Tid| -> f64 {
            let mut s = 0.0;
            let mut n = 0;
            for tick in 0..400 {
                if let (Some(x), Some(y)) = (ds.value(a, tick), ds.value(b, tick)) {
                    s += f64::from((x - y).abs());
                    n += 1;
                }
            }
            s / n.max(1) as f64
        };
        let same = spread(1, 2);
        let cross = spread(1, 4); // tid 4 is in cluster 1
        assert!(
            same * 5.0 < cross,
            "same-cluster spread {same} vs cross {cross}"
        );
    }

    #[test]
    fn eh_series_are_weakly_correlated() {
        let ds = eh(42, Scale::tiny()).unwrap();
        let mut dev = 0.0;
        let mut n = 0;
        for tick in 0..400 {
            if let (Some(x), Some(y)) = (ds.value(1, tick), ds.value(2, tick)) {
                dev += f64::from((x - y).abs());
                n += 1;
            }
        }
        let avg = dev / n as f64;
        // EH same-cluster series deviate by a large fraction of the shared
        // amplitude, unlike EP's.
        assert!(avg > 2.0, "avg deviation {avg}");
    }

    #[test]
    fn gaps_occur_but_rarely() {
        let ds = ep(
            42,
            Scale {
                clusters: 2,
                series_per_cluster: 3,
                ticks: 4_000,
            },
        )
        .unwrap();
        let mut gaps = 0u64;
        let mut total = 0u64;
        for tick in 0..4_000 {
            for v in ds.row(tick) {
                total += 1;
                if v.is_none() {
                    gaps += 1;
                }
            }
        }
        assert!(gaps > 0, "gaps must occur");
        assert!((gaps as f64) < total as f64 * 0.05, "{gaps}/{total} gaps");
        assert_eq!(ds.count_data_points(4_000), total - gaps);
    }

    #[test]
    fn batches_cover_rows_identically() {
        let ds = ep(42, Scale::tiny()).unwrap();
        let mut tick = 0u64;
        let mut batches = 0;
        for batch in ds.batches(100, 32) {
            assert_eq!(batch.n_series(), ds.n_series());
            for row in 0..batch.len() {
                assert_eq!(batch.timestamps()[row], ds.timestamp(tick));
                let expected = ds.row(tick);
                for (s, want) in expected.iter().enumerate() {
                    assert_eq!(batch.get(row, s), *want, "tick {tick} series {s}");
                }
                tick += 1;
            }
            batches += 1;
        }
        assert_eq!(tick, 100);
        assert_eq!(batches, 4); // 32 + 32 + 32 + 4
    }

    #[test]
    fn fill_batch_reuses_allocations() {
        let ds = eh(7, Scale::tiny()).unwrap();
        let mut batch = mdb_types::RowBatch::with_capacity(ds.n_series(), 16);
        ds.fill_batch(0, 16, &mut batch);
        assert_eq!(batch.len(), 16);
        ds.fill_batch(16, 8, &mut batch);
        assert_eq!(batch.len(), 8);
        assert_eq!(batch.timestamps()[0], ds.timestamp(16));
    }

    #[test]
    fn dimensions_match_the_paper() {
        let ds = ep(1, Scale::tiny()).unwrap();
        let schemas = ds.dimensions.schemas();
        assert_eq!(schemas[0].name(), "Production");
        assert_eq!(schemas[0].level_name(1), Some("Type"));
        assert_eq!(schemas[0].level_name(2), Some("Entity"));
        assert_eq!(schemas[1].name(), "Measure");
        assert_eq!(schemas[1].level_name(1), Some("Category"));
        let ds = eh(1, Scale::tiny()).unwrap();
        let schemas = ds.dimensions.schemas();
        assert_eq!(schemas[0].name(), "Location");
        assert_eq!(schemas[0].level_name(1), Some("Country"));
        assert_eq!(schemas[0].level_name(3), Some("Entity"));
    }

    #[test]
    fn correlation_specs_follow_the_evaluation() {
        let ds = ep(1, Scale::tiny()).unwrap();
        let spec = ds.correlation_spec();
        assert_eq!(spec.clauses.len(), 1);
        assert_eq!(spec.clauses[0].primitives.len(), 2);
        let ds = eh(1, Scale::tiny()).unwrap();
        let spec = ds.correlation_spec();
        // Lowest distance for 3-level + 2-level dims: (1/3)/2 = 1/6.
        match &spec.clauses[0].primitives[0] {
            mdb_partitioner::CorrelationPrimitive::Distance(d) => {
                assert!((d - 1.0 / 6.0).abs() < 1e-9)
            }
            other => panic!("expected distance primitive, got {other:?}"),
        }
    }

    #[test]
    fn timestamps_follow_sampling_interval() {
        let ds = ep(1, Scale::tiny()).unwrap();
        assert_eq!(ds.timestamp(0), DEFAULT_START);
        assert_eq!(ds.timestamp(10) - ds.timestamp(9), 60_000);
        let ds = eh(1, Scale::tiny()).unwrap();
        assert_eq!(ds.timestamp(10) - ds.timestamp(9), 100);
    }

    #[test]
    fn values_are_finite_and_in_plausible_range() {
        for ds in [ep(3, Scale::tiny()).unwrap(), eh(3, Scale::tiny()).unwrap()] {
            for tick in 0..500 {
                for v in ds.row(tick).into_iter().flatten() {
                    assert!(v.is_finite());
                    assert!((0.0..400.0).contains(&v), "{v}");
                }
            }
        }
    }
}

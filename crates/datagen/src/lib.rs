//! Synthetic equivalents of the paper's proprietary evaluation data sets
//! (Section 7.2) and its query workloads.
//!
//! The real EP (339 GiB, SI = 60 s, 508 days) and EH (582 GiB, SI ≈ 100 ms)
//! data sets are proprietary; what the evaluation depends on is their
//! *correlation structure*, not their exact values:
//!
//! * **EP** — "many time series in EP are correlated": clusters of series
//!   share one energy-production profile (daily cycle + weather-like drift),
//!   differing by small offsets and noise. Dimensions `Production:
//!   Entity → Type` and `Measure: Concrete → Category`.
//! * **EH** — "these time series only exhibit very limited correlation":
//!   per-series noise dominates a weak shared component. Dimensions
//!   `Location: Entity → Park → Country` and `Measure: Concrete → Category`.
//!
//! Values are a pure function of `(seed, tid, tick)` built from hash noise
//! and smooth sinusoids, so any slice of a data set can be regenerated
//! without state, across threads, at any scale. Gaps appear in random
//! windows per series, like sensors dropping out.

pub mod dataset;
pub mod workload;

pub use dataset::{eh, ep, Batches, Dataset, DatasetProfile, Scale};
pub use workload::Workloads;

/// SplitMix64: the stateless hash behind all synthetic noise.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform value in `[-1, 1)` derived from a hash of the inputs.
#[inline]
pub fn hash_noise(seed: u64, a: u64, b: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(a ^ splitmix64(b)));
    (h >> 12) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_noise_is_deterministic_and_bounded() {
        for i in 0..1000 {
            let v = hash_noise(42, i, i * 7);
            assert!((-1.0..1.0).contains(&v));
            assert_eq!(v, hash_noise(42, i, i * 7));
        }
        assert_ne!(hash_noise(1, 2, 3), hash_noise(2, 2, 3));
    }

    #[test]
    fn hash_noise_has_roughly_zero_mean() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| hash_noise(7, i, 0)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "{mean}");
    }
}

//! The four query workloads of Section 7.2, generated as SQL strings.
//!
//! * **S-AGG** — small simple aggregates for interactive analysis: half on a
//!   single series, half GROUP BY over five series.
//! * **L-AGG** — aggregates over the full data set, half GROUP BY Tid.
//! * **M-AGG** — multi-dimensional aggregates: WHERE on the energy-production
//!   member, GROUP BY month plus a dimension level; variant One groups at
//!   the level the data was partitioned by, variant Two drills one level
//!   down.
//! * **P/R** — point and range extraction restricted by TS or Tid and TS.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

/// Generates the paper's query workloads for a data set.
pub struct Workloads<'a> {
    dataset: &'a Dataset,
    rng: SmallRng,
    ticks: u64,
}

impl<'a> Workloads<'a> {
    /// A workload generator; `ticks` is how many ticks were ingested.
    pub fn new(dataset: &'a Dataset, ticks: u64, seed: u64) -> Self {
        Self {
            dataset,
            rng: SmallRng::seed_from_u64(seed),
            ticks,
        }
    }

    fn random_tid(&mut self) -> u32 {
        self.rng.gen_range(1..=self.dataset.n_series() as u32)
    }

    fn aggregate(&mut self) -> &'static str {
        ["COUNT_S(*)", "MIN_S(*)", "MAX_S(*)", "SUM_S(*)", "AVG_S(*)"]
            [self.rng.gen_range(0..5usize)]
    }

    /// S-AGG: `n` small aggregate queries.
    pub fn s_agg(&mut self, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                let agg = self.aggregate();
                if i % 2 == 0 {
                    format!(
                        "SELECT {agg} FROM Segment WHERE Tid = {}",
                        self.random_tid()
                    )
                } else {
                    let tids: Vec<String> = (0..5).map(|_| self.random_tid().to_string()).collect();
                    format!(
                        "SELECT Tid, {agg} FROM Segment WHERE Tid IN ({}) GROUP BY Tid",
                        tids.join(", ")
                    )
                }
            })
            .collect()
    }

    /// L-AGG: `n` full-data-set aggregates.
    pub fn l_agg(&mut self, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                let agg = self.aggregate();
                if i % 2 == 0 {
                    format!("SELECT {agg} FROM Segment")
                } else {
                    format!("SELECT Tid, {agg} FROM Segment GROUP BY Tid")
                }
            })
            .collect()
    }

    /// The same L-AGG queries but executed on reconstructed data points (the
    /// Data Point View line of Figure 20).
    pub fn l_agg_data_point(&mut self, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                let agg = ["COUNT", "MIN", "MAX", "SUM", "AVG"][self.rng.gen_range(0..5usize)];
                if i % 2 == 0 {
                    format!("SELECT {agg}(Value) FROM DataPoint")
                } else {
                    format!("SELECT Tid, {agg}(Value) FROM DataPoint GROUP BY Tid")
                }
            })
            .collect()
    }

    /// M-AGG: `n` multi-dimensional aggregates. `drill_down` picks variant
    /// Two (grouping one level below the partitioning level).
    pub fn m_agg(&mut self, n: usize, drill_down: bool) -> Vec<String> {
        // The WHERE member "indicating energy production" per data set.
        let (filter_col, filter_val) = if self.dataset.name == "EP" {
            ("Category", "ProductionMWh")
        } else {
            ("Category", "Electrical")
        };
        // Variant One groups at the level used for partitioning; variant Two
        // drills one level down (M-AGG-One/Two of Figures 25–28).
        let group_col = match (self.dataset.name.as_str(), drill_down) {
            ("EP", false) => "Type",
            ("EP", true) => "Entity",
            (_, false) => "Park",
            (_, true) => "Entity",
        };
        (0..n)
            .map(|i| {
                let agg = ["SUM", "AVG"][self.rng.gen_range(0..2usize)];
                if i % 2 == 0 {
                    format!(
                        "SELECT {group_col}, CUBE_{agg}_MONTH(*) FROM Segment WHERE {filter_col} = '{filter_val}' GROUP BY {group_col}"
                    )
                } else {
                    format!(
                        "SELECT {group_col}, Tid, CUBE_{agg}_MONTH(*) FROM Segment WHERE {filter_col} = '{filter_val}' GROUP BY {group_col}, Tid"
                    )
                }
            })
            .collect()
    }

    /// P/R: `n` point and range queries on the Data Point View.
    pub fn point_range(&mut self, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                let tick = self.rng.gen_range(0..self.ticks.max(1));
                let ts = self.dataset.timestamp(tick);
                match i % 3 {
                    0 => format!("SELECT * FROM DataPoint WHERE TS = {ts}"),
                    1 => {
                        let span = self.rng.gen_range(10..200u64);
                        let hi = self
                            .dataset
                            .timestamp((tick + span).min(self.ticks.saturating_sub(1)));
                        format!(
                            "SELECT * FROM DataPoint WHERE Tid = {} AND TS BETWEEN {ts} AND {hi}",
                            self.random_tid()
                        )
                    }
                    _ => format!(
                        "SELECT * FROM DataPoint WHERE Tid = {} AND TS = {ts}",
                        self.random_tid()
                    ),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{eh, ep, Scale};

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let ds = ep(1, Scale::tiny()).unwrap();
        let a = Workloads::new(&ds, 500, 9).s_agg(10);
        let b = Workloads::new(&ds, 500, 9).s_agg(10);
        assert_eq!(a, b);
        let c = Workloads::new(&ds, 500, 10).s_agg(10);
        assert_ne!(a, c);
    }

    #[test]
    fn s_agg_alternates_single_and_grouped() {
        let ds = ep(1, Scale::tiny()).unwrap();
        let qs = Workloads::new(&ds, 500, 1).s_agg(4);
        assert!(qs[0].contains("WHERE Tid = "));
        assert!(qs[1].contains("GROUP BY Tid"));
        assert!(qs[1].contains("Tid IN"));
    }

    #[test]
    fn l_agg_covers_full_data_set() {
        let ds = ep(1, Scale::tiny()).unwrap();
        let qs = Workloads::new(&ds, 500, 1).l_agg(2);
        assert!(!qs[0].contains("WHERE"));
        assert!(qs[1].contains("GROUP BY Tid"));
        let dp = Workloads::new(&ds, 500, 1).l_agg_data_point(2);
        assert!(dp[0].contains("FROM DataPoint"));
    }

    #[test]
    fn m_agg_levels_per_dataset() {
        let ds = ep(1, Scale::tiny()).unwrap();
        let one = Workloads::new(&ds, 500, 1).m_agg(2, false);
        assert!(one[0].contains("GROUP BY Type"), "{}", one[0]);
        assert!(one[0].contains("Category = 'ProductionMWh'"));
        assert!(one[0].contains("CUBE_"));
        let two = Workloads::new(&ds, 500, 1).m_agg(2, true);
        assert!(two[0].contains("GROUP BY Entity"));
        let dsh = eh(1, Scale::tiny()).unwrap();
        let one = Workloads::new(&dsh, 500, 1).m_agg(2, false);
        assert!(one[0].contains("GROUP BY Park"));
    }

    #[test]
    fn point_range_mixes_shapes() {
        let ds = ep(1, Scale::tiny()).unwrap();
        let qs = Workloads::new(&ds, 500, 1).point_range(6);
        assert!(qs.iter().any(|q| q.contains("BETWEEN")));
        assert!(qs
            .iter()
            .any(|q| q.starts_with("SELECT * FROM DataPoint WHERE TS = ")));
        assert!(qs
            .iter()
            .any(|q| q.contains("Tid = ") && q.contains("TS = ")));
    }

    #[test]
    fn generated_queries_parse() {
        // Every workload query must be valid SQL for the engine's parser —
        // checked here via a lightweight structural assertion (the query
        // crate has the parser; the integration tests run them end to end).
        let ds = eh(1, Scale::tiny()).unwrap();
        let mut w = Workloads::new(&ds, 500, 3);
        for q in w
            .s_agg(10)
            .into_iter()
            .chain(w.l_agg(10))
            .chain(w.m_agg(10, false))
            .chain(w.m_agg(10, true))
            .chain(w.point_range(10))
        {
            assert!(q.starts_with("SELECT "), "{q}");
            assert!(q.contains(" FROM "), "{q}");
        }
    }
}

//! Section 4.2 ablation: dynamic splitting on/off and split-fraction sweep,
//! on a workload whose series periodically decorrelate.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdb_compression::{CompressionConfig, GroupIngestor};
use mdb_types::{ErrorBound, GroupMeta, TimeSeriesMeta, Value};
use modelardb::ModelRegistry;

/// Two series that stay correlated except for periodic windows where one
/// diverges wildly (a turbine turning off, Section 4.2's motivation).
fn row(tick: u64) -> [Option<Value>; 2] {
    let base = (tick as f32 * 0.005).sin() * 10.0 + 100.0;
    let diverged = tick % 1_000 >= 700;
    let other = if diverged {
        let h = mdb_datagen::hash_noise(7, tick, 1) as f32;
        500.0 + h * 200.0
    } else {
        base + 0.05
    };
    [Some(base), Some(other)]
}

fn bench_split(c: &mut Criterion) {
    let metas = [TimeSeriesMeta::new(1, 100), TimeSeriesMeta::new(2, 100)];
    let group = GroupMeta::new(1, vec![1, 2], &metas).unwrap();
    let registry = Arc::new(ModelRegistry::standard());
    let mut bench_group = c.benchmark_group("split_ablation");
    bench_group.sample_size(10);
    for (name, dynamic_split, fraction) in [
        ("split_off", false, 10.0),
        ("split_frac_10", true, 10.0),
        ("split_frac_2", true, 2.0),
    ] {
        let config = CompressionConfig {
            error_bound: ErrorBound::relative(5.0),
            dynamic_split,
            split_fraction: fraction,
            ..Default::default()
        };
        bench_group.bench_function(BenchmarkId::new("ingest_bytes", name), |b| {
            b.iter(|| {
                let mut ing = GroupIngestor::new(
                    group.clone(),
                    vec![],
                    Arc::clone(&registry),
                    config.clone(),
                )
                .unwrap();
                let mut bytes = 0u64;
                for tick in 0..5_000u64 {
                    let r = row(tick);
                    for seg in ing.push_row(tick as i64 * 100, &r).unwrap() {
                        bytes += seg.storage_bytes() as u64;
                    }
                }
                for seg in ing.flush().unwrap() {
                    bytes += seg.storage_bytes() as u64;
                }
                bytes
            })
        });
    }
    bench_group.finish();
}

criterion_group!(benches, bench_split);
criterion_main!(benches);

//! Section 5.1 vs 5.2 ablation: multiple models per segment (the `PerSeries`
//! adapter) vs native single-model-per-segment group compression, measuring
//! fitting throughput. Storage sizes are reported by `repro mgc`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdb_compression::{CompressionConfig, GroupIngestor};
use mdb_datagen::{ep, Scale};
use mdb_types::{ErrorBound, GroupMeta};
use modelardb::ModelRegistry;

fn bench_mgc(c: &mut Criterion) {
    let scale = Scale {
        clusters: 1,
        series_per_cluster: 3,
        ticks: 5_000,
    };
    let ds = ep(42, scale).unwrap();
    let group = GroupMeta {
        gid: 1,
        tids: vec![1, 2, 3],
        sampling_interval: ds.profile.si_ms,
    };
    let config = CompressionConfig {
        error_bound: ErrorBound::relative(5.0),
        ..Default::default()
    };

    let mut bench_group = c.benchmark_group("mgc_ablation");
    bench_group.sample_size(10);
    for (name, registry) in [
        ("native_group_models", ModelRegistry::standard()),
        ("per_series_adapter", ModelRegistry::per_series_baseline()),
    ] {
        let registry = Arc::new(registry);
        bench_group.bench_function(BenchmarkId::new("fit", name), |b| {
            b.iter(|| {
                let mut ing = GroupIngestor::new(
                    group.clone(),
                    vec![],
                    Arc::clone(&registry),
                    config.clone(),
                )
                .unwrap();
                let mut bytes = 0u64;
                for tick in 0..scale.ticks {
                    let row = ds.row(tick);
                    for seg in ing.push_row(ds.timestamp(tick), &row).unwrap() {
                        bytes += seg.storage_bytes() as u64;
                    }
                }
                for seg in ing.flush().unwrap() {
                    bytes += seg.storage_bytes() as u64;
                }
                bytes
            })
        });
    }
    bench_group.finish();
}

criterion_group!(benches, bench_mgc);
criterion_main!(benches);

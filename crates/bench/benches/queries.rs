//! Figures 19, 21–28 microbenchmarks: the four query workloads on the
//! Segment View vs the Data Point View, EP and EH flavours.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdb_bench::{build_engine, ingest_engine, run_queries};
use mdb_datagen::{eh, ep, Scale, Workloads};

fn bench_queries(c: &mut Criterion) {
    let scale = Scale {
        clusters: 4,
        series_per_cluster: 4,
        ticks: 4_000,
    };
    for (name, ds) in [
        ("ep", ep(42, scale).unwrap()),
        ("eh", eh(42, scale).unwrap()),
    ] {
        let mut db = build_engine(&ds, true, 10.0);
        ingest_engine(&mut db, &ds, scale.ticks);
        let mut w = Workloads::new(&ds, scale.ticks, 7);
        let s_agg = w.s_agg(10);
        let l_agg = w.l_agg(4);
        let l_agg_dpv = w.l_agg_data_point(4);
        let m_agg_one = w.m_agg(4, false);
        let m_agg_two = w.m_agg(4, true);
        let pr = w.point_range(10);

        let mut group = c.benchmark_group(format!("queries_{name}"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::new("s_agg", "segment_view"), |b| {
            b.iter(|| run_queries(&db, &s_agg))
        });
        group.bench_function(BenchmarkId::new("l_agg", "segment_view"), |b| {
            b.iter(|| run_queries(&db, &l_agg))
        });
        group.bench_function(BenchmarkId::new("l_agg", "data_point_view"), |b| {
            b.iter(|| run_queries(&db, &l_agg_dpv))
        });
        group.bench_function(BenchmarkId::new("m_agg_one", "segment_view"), |b| {
            b.iter(|| run_queries(&db, &m_agg_one))
        });
        group.bench_function(BenchmarkId::new("m_agg_two", "segment_view"), |b| {
            b.iter(|| run_queries(&db, &m_agg_two))
        });
        group.bench_function(BenchmarkId::new("point_range", "data_point_view"), |b| {
            b.iter(|| run_queries(&db, &pr))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);

//! Ingestion-path microbenchmark: tick-at-a-time rows vs columnar
//! [`modelardb::RowBatch`] batches, through the embedded engine and the
//! cluster runtime. The batch path exists to eliminate the per-tick
//! allocations of the row path (Table 1's bulk write size, applied
//! end-to-end), so batched ingestion should win on every substrate.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdb_bench::{
    build_engine, catalog_from_dataset, ingest_cluster, ingest_cluster_batched, ingest_engine,
    ingest_engine_batched,
};
use mdb_cluster::Cluster;
use mdb_datagen::{ep, Scale};
use modelardb::{CompressionConfig, ErrorBound, ModelRegistry};

fn bench_ingest_throughput(c: &mut Criterion) {
    let scale = Scale {
        clusters: 4,
        series_per_cluster: 4,
        ticks: 2_000,
    };
    let ds = ep(42, scale).unwrap();
    let points = ds.count_data_points(scale.ticks);
    let mut group = c.benchmark_group("ingest_throughput");
    group.throughput(Throughput::Elements(points));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("engine", "row_at_a_time"), |b| {
        b.iter(|| {
            let mut db = build_engine(&ds, true, 10.0);
            ingest_engine(&mut db, &ds, scale.ticks)
        })
    });
    for batch_size in [64u64, 512, 4_096] {
        group.bench_function(BenchmarkId::new("engine_batched", batch_size), |b| {
            b.iter(|| {
                let mut db = build_engine(&ds, true, 10.0);
                ingest_engine_batched(&mut db, &ds, scale.ticks, batch_size)
            })
        });
    }
    // The convenience iterator (one freshly allocated batch per chunk), to
    // keep the ergonomic API honest against the batch-reusing fast path.
    group.bench_function(BenchmarkId::new("engine_batch_iter", 512), |b| {
        b.iter(|| {
            let mut db = build_engine(&ds, true, 10.0);
            for batch in ds.batches(scale.ticks, 512) {
                db.ingest_batch(&batch).unwrap();
            }
            db.flush().unwrap();
        })
    });

    let start_cluster = || {
        Cluster::start(
            catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap(),
            Arc::new(ModelRegistry::standard()),
            CompressionConfig {
                error_bound: ErrorBound::relative(10.0),
                ..Default::default()
            },
            3,
        )
        .unwrap()
    };
    group.bench_function(BenchmarkId::new("cluster", "row_at_a_time"), |b| {
        b.iter(|| {
            let cluster = start_cluster();
            let elapsed = ingest_cluster(&cluster, &ds, scale.ticks);
            cluster.shutdown().unwrap();
            elapsed
        })
    });
    group.bench_function(BenchmarkId::new("cluster_batched", 512), |b| {
        b.iter(|| {
            let cluster = start_cluster();
            let elapsed = ingest_cluster_batched(&cluster, &ds, scale.ticks, 512);
            cluster.shutdown().unwrap();
            elapsed
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ingest_throughput);
criterion_main!(benches);

//! Figure 13 microbenchmark: ingestion throughput of ModelarDB+ (v1/v2) vs
//! the baseline formats on the EP-like data set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdb_bench::{build_engine, dim_strings, ingest_engine};
use mdb_datagen::{ep, Scale};

fn bench_ingestion(c: &mut Criterion) {
    let scale = Scale {
        clusters: 4,
        series_per_cluster: 4,
        ticks: 2_000,
    };
    let ds = ep(42, scale).unwrap();
    let points = ds.count_data_points(scale.ticks);
    let mut group = c.benchmark_group("fig13_ingestion_ep");
    group.throughput(Throughput::Elements(points));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("modelardb", "v2_mmgc"), |b| {
        b.iter(|| {
            let mut db = build_engine(&ds, true, 10.0);
            ingest_engine(&mut db, &ds, scale.ticks)
        })
    });
    group.bench_function(BenchmarkId::new("modelardb", "v1_mmc"), |b| {
        b.iter(|| {
            let mut db = build_engine(&ds, false, 10.0);
            ingest_engine(&mut db, &ds, scale.ticks)
        })
    });

    let dims: Vec<Vec<String>> = ds.tids().iter().map(|&t| dim_strings(&ds, t)).collect();
    let mut bench_store =
        |name: &str, make: &dyn Fn() -> Box<dyn mdb_baselines::TimeSeriesStore>| {
            group.bench_function(BenchmarkId::new("baseline", name), |b| {
                b.iter(|| {
                    let mut store = make();
                    for tick in 0..scale.ticks {
                        let ts = ds.timestamp(tick);
                        for (i, v) in ds.row(tick).into_iter().enumerate() {
                            let Some(v) = v else { continue };
                            let refs: Vec<&str> = dims[i].iter().map(String::as_str).collect();
                            store.ingest(i as u32 + 1, ts, v, &refs).unwrap();
                        }
                    }
                    store.flush().unwrap();
                    store.size_bytes()
                })
            });
        };
    bench_store("influx", &|| Box::new(mdb_baselines::InfluxLike::new()));
    bench_store("cassandra", &|| {
        Box::new(mdb_baselines::CassandraLike::new())
    });
    bench_store("parquet", &|| Box::new(mdb_baselines::ParquetLike::new()));
    bench_store("orc", &|| Box::new(mdb_baselines::OrcLike::new()));
    group.finish();
}

criterion_group!(benches, bench_ingestion);
criterion_main!(benches);

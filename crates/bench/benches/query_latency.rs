//! Query-path microbenchmark behind `BENCH_query.json`: time-ranged S-AGG
//! and full-span L-AGG on the Segment View, comparing the plain sequential
//! scan (no zone-map pruning, one worker) against the pruned-parallel path
//! (zone-map run skipping plus the persistent scan pool).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdb_bench::{build_engine_with, ingest_engine_batched, run_queries, time_ranged_queries};
use mdb_datagen::{eh, ep, Scale};

fn bench_query_latency(c: &mut Criterion) {
    let scale = Scale {
        clusters: 4,
        series_per_cluster: 4,
        ticks: 4_000,
    };
    let ticks = scale.ticks * 4;
    for (name, ds) in [
        ("ep", ep(42, scale).unwrap()),
        ("eh", eh(42, scale).unwrap()),
    ] {
        let mut sequential = build_engine_with(&ds, true, 10.0, 1, false);
        ingest_engine_batched(&mut sequential, &ds, ticks, 512);
        let mut pruned = build_engine_with(&ds, true, 10.0, 0, true);
        ingest_engine_batched(&mut pruned, &ds, ticks, 512);

        let s_agg = time_ranged_queries(&ds, ticks, "SUM_S", 10);
        let l_agg = vec!["SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid".to_string(); 2];

        let mut group = c.benchmark_group(format!("query_latency_{name}"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::new("time_ranged_sum", "sequential"), |b| {
            b.iter(|| run_queries(&sequential, &s_agg))
        });
        group.bench_function(
            BenchmarkId::new("time_ranged_sum", "pruned_parallel"),
            |b| b.iter(|| run_queries(&pruned, &s_agg)),
        );
        group.bench_function(BenchmarkId::new("l_agg", "sequential"), |b| {
            b.iter(|| run_queries(&sequential, &l_agg))
        });
        group.bench_function(BenchmarkId::new("l_agg", "pruned_parallel"), |b| {
            b.iter(|| run_queries(&pruned, &l_agg))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_query_latency);
criterion_main!(benches);

//! Figure 20 microbenchmark: worker-count scaling of L-AGG on the cluster
//! runtime (weak scaling: the data grows with the worker count).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdb_bench::catalog_from_dataset;
use mdb_cluster::Cluster;
use mdb_datagen::{ep, Scale};
use modelardb::{CompressionConfig, ErrorBound, ModelRegistry};

fn bench_scaleout(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig20_scaleout");
    group.sample_size(10);
    for nodes in [1usize, 2, 4] {
        let scale = Scale {
            clusters: 2 * nodes,
            series_per_cluster: 4,
            ticks: 2_000,
        };
        let ds = ep(42, scale).unwrap();
        let catalog = catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap();
        let cluster = Cluster::start(
            catalog,
            Arc::new(ModelRegistry::standard()),
            CompressionConfig {
                error_bound: ErrorBound::relative(10.0),
                ..Default::default()
            },
            nodes,
        )
        .unwrap();
        for tick in 0..scale.ticks {
            cluster
                .ingest_row(ds.timestamp(tick), &ds.row(tick))
                .unwrap();
        }
        cluster.flush().unwrap();
        group.bench_function(BenchmarkId::new("l_agg_segment_view", nodes), |b| {
            b.iter(|| {
                cluster
                    .sql("SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid")
                    .unwrap()
            })
        });
        cluster.shutdown().unwrap();
    }
    group.finish();
}

criterion_group!(benches, bench_scaleout);
criterion_main!(benches);

//! `repro` — regenerates every table and figure of the paper's evaluation
//! (Section 7) on the synthetic EP/EH data sets.
//!
//! ```text
//! repro <experiment> [--scale tiny|small|medium]
//! repro gate --baseline <file> --current <file> [--tolerance <factor>]
//!
//! experiments:
//!   table1  fig13  fig14  fig15  fig16  fig17  fig18  fig19  fig20
//!   fig21   fig22  fig23  fig24  fig25  fig26  fig27  fig28  mgc
//!   ingest  query  storage  scan  sketch  rollup  serve  chaos  all
//! ```
//!
//! Unknown experiments, scales, or options exit non-zero with a usage
//! message instead of being silently ignored.
//!
//! `ingest` additionally writes `BENCH_ingest.json` (rows/sec and points/sec
//! for the tick-at-a-time vs batched ingestion paths), `query` writes
//! `BENCH_query.json` (time-ranged `SUM_S`/`AVG_S` latency for the plain
//! sequential scan vs the pruned-parallel path), and `storage` writes
//! `BENCH_storage.json` (sidecar-assisted vs full-log-scan reopen time and
//! the resident-segment peak under a bounded memory budget), `scan` writes
//! `BENCH_scan.json` (cold-cache full-span aggregate scans over the v1
//! decode path vs the zero-copy v2 view path, prefetch off and on), and
//! `sketch` writes `BENCH_sketch.json` (metadata-only sketch queries vs
//! their exact full-scan equivalents), `rollup` writes `BENCH_rollup.json`
//! (whole-bucket time-hierarchy aggregates served from the incrementally
//! materialized rollup cells vs the full bucketed scan — bit-identical
//! answers, checked in-run), and `serve` writes `BENCH_serve.json`
//! (the networked front-end: remote-vs-in-process query efficiency plus
//! throughput and tail latency under concurrent connections) so the perf
//! trajectory is machine-readable across commits. `gate` compares a freshly produced
//! `BENCH_*.json` against a committed baseline and fails (exit 1) on more
//! than `--tolerance`-fold regression — of the machine-portable speedup
//! ratios by default, and also of raw rates/latencies under `--absolute` —
//! the CI perf-regression step.
//!
//! Absolute numbers will differ from the paper (its substrate was a 7-node
//! cluster over 339–582 GiB of proprietary data; this is a laptop-scale
//! simulation) — the *shape* is what is reproduced: who wins, by roughly
//! what factor, and where the crossovers sit. EXPERIMENTS.md records both.

use std::sync::Arc;
use std::time::Duration;

use mdb_bench::*;
use mdb_cluster::{Cluster, ClusterConfig, WorkerState};
use mdb_datagen::{eh, ep, Dataset, Scale, Workloads};
use mdb_partitioner::CorrelationSpec;
use mdb_testutil::TempDir;
use modelardb::{
    Client, CommonOptions, CompressionConfig, ErrorBound, ModelRegistry, QueryResult, RowBatch,
    SegmentStore, Server, ServerOptions, SharedDatastore,
};

const SEED: u64 = 42;
const BOUNDS: [f64; 4] = [0.0, 1.0, 5.0, 10.0];

const EXPERIMENTS: [&str; 26] = [
    "table1", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
    "fig22", "fig23", "fig24", "fig25", "fig26", "fig27", "fig28", "mgc", "ingest", "query",
    "storage", "scan", "sketch", "rollup", "serve", "chaos",
];

fn usage() -> String {
    format!(
        "usage: repro [<experiment>] [--scale tiny|small|medium]\n\
         \x20      repro gate --baseline <file> --current <file> [--tolerance <factor>] [--absolute]\n\
         \n\
         experiments (default: all):\n  all {}\n",
        EXPERIMENTS.join(" ")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = dispatch(&args) {
        eprintln!("error: {message}\n");
        eprint!("{}", usage());
        std::process::exit(2);
    }
}

/// Parses the command line strictly — unknown experiments, scales, or
/// options are errors, not no-ops — and runs the selection.
fn dispatch(args: &[String]) -> Result<(), String> {
    if args.first().map(String::as_str) == Some("gate") {
        return gate(&args[1..]);
    }
    let mut experiment: Option<String> = None;
    let mut scale = Scale::small();
    let mut scale_name = "small".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| "--scale requires a value (tiny|small|medium)".to_string())?;
                scale = match value.as_str() {
                    "tiny" => Scale::tiny(),
                    "small" => Scale::small(),
                    "medium" => Scale::medium(),
                    other => return Err(format!("unknown scale {other:?} (tiny|small|medium)")),
                };
                scale_name = value.clone();
                i += 2;
            }
            option if option.starts_with('-') => {
                return Err(format!("unknown option {option:?}"));
            }
            name => {
                if experiment.is_some() {
                    return Err(format!("unexpected extra argument {name:?}"));
                }
                if name != "all" && !EXPERIMENTS.contains(&name) {
                    return Err(format!("unknown experiment {name:?}"));
                }
                experiment = Some(name.to_string());
                i += 1;
            }
        }
    }
    let experiment = experiment.unwrap_or_else(|| "all".to_string());
    run_experiments(&experiment, scale, &scale_name);
    Ok(())
}

fn run_experiments(experiment: &str, scale: Scale, scale_name: &str) {
    let run = |name: &str| experiment == "all" || experiment == name;

    if run("table1") {
        table1();
    }
    if run("fig13") {
        fig13(scale);
    }
    if run("fig14") {
        storage_figure("Figure 14: Storage, EP", &ep(SEED, scale).unwrap(), scale);
    }
    if run("fig15") {
        storage_figure("Figure 15: Storage, EH", &eh(SEED, scale).unwrap(), scale);
    }
    if run("fig16") {
        models_figure(
            "Figure 16: Models used, EP",
            &ep(SEED, scale).unwrap(),
            scale,
        );
    }
    if run("fig17") {
        models_figure(
            "Figure 17: Models used, EH",
            &eh(SEED, scale).unwrap(),
            scale,
        );
    }
    if run("fig18") {
        fig18(scale);
    }
    if run("fig19") {
        fig19(scale);
    }
    if run("fig20") {
        fig20(scale);
    }
    if run("fig21") {
        s_agg_figure("Figure 21: S-AGG, EP", &ep(SEED, scale).unwrap(), scale);
    }
    if run("fig22") {
        s_agg_figure("Figure 22: S-AGG, EH", &eh(SEED, scale).unwrap(), scale);
    }
    if run("fig23") {
        pr_figure("Figure 23: P/R, EP", &ep(SEED, scale).unwrap(), scale);
    }
    if run("fig24") {
        pr_figure("Figure 24: P/R, EH", &eh(SEED, scale).unwrap(), scale);
    }
    if run("fig25") {
        m_agg_figure(
            "Figure 25: M-AGG-One, EP",
            &ep(SEED, scale).unwrap(),
            scale,
            false,
        );
    }
    if run("fig26") {
        m_agg_figure(
            "Figure 26: M-AGG-Two, EP",
            &ep(SEED, scale).unwrap(),
            scale,
            true,
        );
    }
    if run("fig27") {
        m_agg_figure(
            "Figure 27: M-AGG-One, EH",
            &eh(SEED, scale).unwrap(),
            scale,
            false,
        );
    }
    if run("fig28") {
        m_agg_figure(
            "Figure 28: M-AGG-Two, EH",
            &eh(SEED, scale).unwrap(),
            scale,
            true,
        );
    }
    if run("mgc") {
        mgc_ablation();
    }
    if run("ingest") {
        ingest_rates(scale, scale_name);
    }
    if run("query") {
        query_rates(scale, scale_name);
    }
    if run("storage") {
        storage_rates(scale, scale_name);
    }
    if run("scan") {
        scan_rates(scale, scale_name);
    }
    if run("sketch") {
        sketch_rates(scale, scale_name);
    }
    if run("rollup") {
        rollup_rates(scale, scale_name);
    }
    if run("serve") {
        serve_rates(scale, scale_name);
    }
    if run("chaos") {
        chaos(scale);
    }
}

/// `chaos`: the failover demonstration — a replicated disk-backed cluster
/// loses a worker *silently* mid-ingest; every probe query must match a
/// never-failed run bit-for-bit, the health report must name the casualty
/// with zero groups lost, and a restart over the failed-over directory must
/// answer identically. Plain asserts: any divergence exits non-zero, which
/// is exactly what the CI smoke step relies on.
fn chaos(scale: Scale) {
    const WORKERS: usize = 4;
    const VICTIM: usize = 1;
    let ds = ep(SEED, scale).unwrap();
    let ticks = ds.scale.ticks;
    let queries = [
        "SELECT COUNT_S(*) FROM Segment",
        "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
        "SELECT Entity, AVG_S(*) FROM Segment GROUP BY Entity ORDER BY Entity",
    ];
    let start = |dir: &std::path::Path| {
        Cluster::start_with(
            catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap(),
            Arc::new(ModelRegistry::standard()),
            ClusterConfig {
                common: CommonOptions::builder()
                    .compression(CompressionConfig {
                        error_bound: ErrorBound::relative(10.0),
                        ..Default::default()
                    })
                    .storage_dir(Some(dir.to_path_buf()))
                    .bulk_write_size(64)
                    .query_parallelism(1)
                    .build(),
                replication_factor: 2,
                ..ClusterConfig::default()
            },
            WORKERS,
        )
        .unwrap()
    };
    let ingest = |cluster: &Cluster, range: std::ops::Range<u64>| {
        for tick in range {
            cluster
                .ingest_row(ds.timestamp(tick), &ds.row(tick))
                .unwrap();
        }
    };

    let baseline_dir = TempDir::new("repro-chaos-baseline");
    let baseline = start(baseline_dir.path());
    ingest(&baseline, 0..ticks);
    baseline.flush().unwrap();
    let want: Vec<_> = queries.iter().map(|q| baseline.sql(q).unwrap()).collect();
    baseline.shutdown().unwrap();

    let chaos_dir = TempDir::new("repro-chaos");
    let cluster = start(chaos_dir.path());
    ingest(&cluster, 0..ticks / 3);
    assert!(cluster.crash_worker(VICTIM), "victim must be active");
    ingest(&cluster, ticks / 3..ticks);
    // The first flush may be the one that *reports* the silent death.
    if cluster.flush().is_err() {
        cluster.flush().unwrap();
    }
    let health = cluster.health();
    assert_eq!(health.workers[VICTIM].state, WorkerState::Dead);
    assert!(health.lost_gids.is_empty(), "rf=2 must lose nothing");
    for (q, want) in queries.iter().zip(&want) {
        assert_eq!(
            &cluster.sql(q).unwrap(),
            want,
            "{q} diverged after failover"
        );
    }
    cluster.shutdown().unwrap();

    // A restart over the same directory adopts the failed-over placement:
    // the crashed slot comes back empty (its stale log is routed around)
    // and results still match the never-failed run.
    let reopened = start(chaos_dir.path());
    let snapshot = reopened.health();
    assert!(
        snapshot.workers[VICTIM].hosted_gids.is_empty(),
        "the failed slot must not get its groups back on restart"
    );
    assert!(snapshot.lost_gids.is_empty());
    for (q, want) in queries.iter().zip(&want) {
        assert_eq!(
            &reopened.sql(q).unwrap(),
            want,
            "{q} diverged after restart"
        );
    }
    reopened.shutdown().unwrap();

    print_figure(
        "Chaos: replicated failover parity",
        &["Check", "Status"],
        &[
            vec![
                format!("worker {VICTIM} killed mid-ingest: results bit-identical"),
                "ok".into(),
            ],
            vec![
                format!("worker {VICTIM} reported dead, 0 groups lost"),
                "ok".into(),
            ],
            vec!["restart over failed-over directory".into(), "ok".into()],
        ],
    );
}

/// `storage`: restart time and resident memory of the out-of-core disk
/// store, written to `BENCH_storage.json`. One log is ingested per data set
/// (sixteen times the scale's ticks, small blocks so even the tiny scale
/// has dozens of them); then two reopen paths are timed in interleaved
/// repetitions (fastest wins): `sidecar` loads block summaries and the zone
/// map from `segments.idx`, `logscan` deletes the sidecar first and pays
/// the streaming block-by-block rebuild. The gated `reopen_speedup` is
/// their ratio. The bounded-cache pass reopens with a small
/// `memory_budget_bytes`, scans everything, and reports the *store's*
/// resident segment high-water mark (cache + write buffer) — O(cache
/// capacity), not O(total segments). Consumers that materialize the scan
/// (this pass's own collect, or the query engine's collect phase) hold
/// their surviving segments on top of that; the metric bounds the store,
/// not the whole process.
fn storage_rates(scale: Scale, scale_name: &str) {
    const REPS: usize = 7;
    /// Segments per block: small enough that even `--scale tiny` produces
    /// dozens of blocks for the sidecar to summarize.
    const BULK: usize = 64;
    /// Block-cache budget for the bounded-resident pass.
    const BUDGET: u64 = 96 * 1024;
    let mut rows = Vec::new();
    let mut cache_rows = Vec::new();
    let mut entries = Vec::new();
    for ds in [ep(SEED, scale).unwrap(), eh(SEED, scale).unwrap()] {
        let ticks = (ds.scale.ticks * 16).max(20_000);
        let dir = std::env::temp_dir().join(format!(
            "mdb-repro-storage-{}-{}",
            std::process::id(),
            ds.name
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut db = build_disk_engine(&ds, &dir, 10.0, BULK, None);
        ingest_engine_batched(&mut db, &ds, ticks, 512);
        let segments = db.segment_count();
        drop(db);

        // Reopen at the store level, value-bounded exactly like the engine.
        let catalog = catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap();
        let registry = Arc::new(ModelRegistry::standard());
        let bounds = modelardb::value_bounds_fn(&catalog, &registry);
        let open = |budget: Option<u64>, prefetch: usize| {
            modelardb::DiskStore::open_with(
                &dir,
                modelardb::DiskStoreOptions {
                    bulk_write_size: BULK,
                    memory_budget_bytes: budget,
                    value_bounds: Some(std::sync::Arc::clone(&bounds)),
                    prefetch_depth: prefetch,
                    ..Default::default()
                },
            )
            .expect("reopen")
        };
        let blocks = open(None, 0).block_count();
        // Sanity: both reopen paths must recover identical segments.
        let via_sidecar = store_segments(&open(None, 0));
        std::fs::remove_file(dir.join("segments.idx")).expect("sidecar present");
        let rebuilt = open(None, 0);
        assert_eq!(via_sidecar, store_segments(&rebuilt), "{}", ds.name);
        drop(rebuilt); // its open rewrote the sidecar
        let mut sidecar_elapsed = Duration::MAX;
        let mut logscan_elapsed = Duration::MAX;
        for _ in 0..REPS {
            // Interleaved so machine-load drift cannot bias one path.
            let (_, elapsed) = timed(|| std::hint::black_box(open(None, 0).len()));
            sidecar_elapsed = sidecar_elapsed.min(elapsed);
            std::fs::remove_file(dir.join("segments.idx")).expect("sidecar present");
            let (_, elapsed) = timed(|| std::hint::black_box(open(None, 0).len()));
            logscan_elapsed = logscan_elapsed.min(elapsed);
        }
        let speedup = logscan_elapsed.as_secs_f64() / sidecar_elapsed.as_secs_f64().max(1e-9);

        // Bounded-cache pass: scan the whole store with the prefetcher on
        // and record the resident high-water mark plus the cache counters.
        let bounded = open(Some(BUDGET), 2);
        let all = store_segments(&bounded);
        assert_eq!(all.len(), segments, "{}", ds.name);
        let peak = bounded.resident_segment_peak();
        let cache = bounded.cache_stats();
        drop(bounded);

        rows.push(vec![
            ds.name.clone(),
            segments.to_string(),
            blocks.to_string(),
            fmt_ms(sidecar_elapsed),
            fmt_ms(logscan_elapsed),
            format!("{speedup:.2}x"),
            format!("{peak}/{segments}"),
        ]);
        cache_rows.push(vec![
            ds.name.clone(),
            fmt_bytes(cache.bytes_read),
            cache.prefetch_issued.to_string(),
            cache.prefetch_hits.to_string(),
            cache.decode_validations.to_string(),
            cache.owned_decodes.to_string(),
        ]);
        entries.push(format!(
            concat!(
                "    {{\"dataset\": \"{}\", \"ticks\": {}, \"segments\": {}, \"blocks\": {}, ",
                "\"sidecar_reopen_ms\": {:.3}, \"logscan_reopen_ms\": {:.3}, ",
                "\"reopen_speedup\": {:.3}, \"budget_bytes\": {}, ",
                "\"peak_resident_segments\": {}, \"bytes_read\": {}, ",
                "\"prefetch_issued\": {}, \"prefetch_hits\": {}, ",
                "\"decode_validations\": {}}}"
            ),
            ds.name,
            ticks,
            segments,
            blocks,
            sidecar_elapsed.as_secs_f64() * 1e3,
            logscan_elapsed.as_secs_f64() * 1e3,
            speedup,
            BUDGET,
            peak,
            cache.bytes_read,
            cache.prefetch_issued,
            cache.prefetch_hits,
            cache.decode_validations,
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
    print_figure(
        "Storage engine: sidecar-assisted vs full-log-scan reopen, bounded-cache residency",
        &[
            "Data set",
            "Segments",
            "Blocks",
            "Sidecar reopen",
            "Log-scan reopen",
            "Speedup",
            "Peak resident",
        ],
        &rows,
    );
    print_figure(
        "Block cache counters (bounded-cache pass, prefetch depth 2)",
        &[
            "Data set",
            "Bytes read",
            "Prefetch issued",
            "Prefetch hits",
            "Decode validations",
            "Owned decodes",
        ],
        &cache_rows,
    );
    let json = format!(
        "{{\n  \"scale\": \"{scale_name}\",\n  \"datasets\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    match std::fs::write("BENCH_storage.json", &json) {
        Ok(()) => println!("\nwrote BENCH_storage.json"),
        Err(e) => eprintln!("\nfailed to write BENCH_storage.json: {e}"),
    }
}

/// `scan`: cold-cache full-span aggregate scans, written to
/// `BENCH_scan.json` — the headline of the zero-copy block layout. Each
/// data set is ingested twice into separate directories, once per on-disk
/// block format; every repetition then reopens the engine so the block
/// cache starts empty and each block is read from disk. Three paths are
/// interleaved (fastest repetition wins): the v1 decode path (every block
/// decoded into owned segment records), the v2 view path (blocks validated
/// once, segments folded through borrowed views, zero per-segment
/// allocation), and the v2 view path with the prefetcher reading ahead of
/// the fold. The gated `scan_speedup` is v1 time over v2-with-prefetch
/// time; `EXPECT >= 2x`. Before timing, the two formats must answer the
/// probe queries bit-identically, and the v2 counters must prove the
/// claims: zero owned decodes, bytes read equal to the log's persistent
/// bytes, and every block touched exactly once via demand misses plus
/// prefetches. The adaptive scan shape (fold-group size and pool bypass
/// threshold) is recorded alongside the timings.
fn scan_rates(scale: Scale, scale_name: &str) {
    const REPS: usize = 5;
    /// Segments per block — small blocks so even `--scale tiny` gives the
    /// prefetcher dozens of blocks to read ahead of the fold.
    const BULK: usize = 64;
    const PREFETCH: usize = 256;
    let probes = [
        "SELECT COUNT_S(*), SUM_S(*), AVG_S(*), MIN_S(*), MAX_S(*) FROM Segment".to_string(),
        "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid".to_string(),
    ];
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for ds in [ep(SEED, scale).unwrap(), eh(SEED, scale).unwrap()] {
        let ticks = (ds.scale.ticks * 16).max(20_000);
        let dir_for = |format: &str| {
            std::env::temp_dir().join(format!(
                "mdb-repro-scan-{}-{}-{format}",
                std::process::id(),
                ds.name
            ))
        };
        let (v1_dir, v2_dir) = (dir_for("v1"), dir_for("v2"));
        let mut segments = 0;
        for (dir, format) in [
            (&v1_dir, modelardb::BlockFormat::V1),
            (&v2_dir, modelardb::BlockFormat::V2),
        ] {
            std::fs::remove_dir_all(dir).ok();
            let mut db = build_disk_engine_with(&ds, dir, 10.0, BULK, None, 0, format);
            ingest_engine_batched(&mut db, &ds, ticks, 512);
            segments = db.segment_count();
        }
        // Block count and log size, read cheaply through the sidecar.
        let probe_store = modelardb::DiskStore::open_with(
            &v2_dir,
            modelardb::DiskStoreOptions {
                bulk_write_size: BULK,
                ..Default::default()
            },
        )
        .expect("reopen");
        let blocks = probe_store.block_count();
        let persistent = modelardb::SegmentStore::persistent_bytes(&probe_store);
        drop(probe_store);

        // Parity and counter checks on a dedicated cold pair of opens: the
        // formats must be indistinguishable in results, and the v2 counters
        // must prove the zero-copy claims the timings rest on.
        let v1_db = build_disk_engine_with(
            &ds,
            &v1_dir,
            10.0,
            BULK,
            None,
            0,
            modelardb::BlockFormat::V1,
        );
        let v2_db = build_disk_engine_with(
            &ds,
            &v2_dir,
            10.0,
            BULK,
            None,
            PREFETCH,
            modelardb::BlockFormat::V2,
        );
        for probe in &probes {
            assert_eq!(
                v1_db.sql(probe).unwrap(),
                v2_db.sql(probe).unwrap(),
                "{}: v1 and v2 diverged on {probe}",
                ds.name
            );
        }
        let v2_stats = v2_db.cache_stats();
        assert_eq!(
            v2_stats.owned_decodes, 0,
            "{}: a v2 scan must not decode owned segments",
            ds.name
        );
        assert_eq!(
            v2_stats.bytes_read, persistent,
            "{}: a full cold scan must read exactly the log once",
            ds.name
        );
        assert_eq!(
            v2_stats.prefetch_issued + v2_stats.misses,
            blocks as u64,
            "{}: every block must arrive via one prefetch or one miss",
            ds.name
        );
        let v1_stats = v1_db.cache_stats();
        assert_eq!(
            v1_stats.owned_decodes, blocks as u64,
            "{}: the v1 path must decode every block into owned records",
            ds.name
        );
        drop((v1_db, v2_db));

        // The timed unit: a full-span aggregate folded in one pass over the
        // store — count, time extent, represented points, and a sum over
        // every parameter byte (so both paths must actually touch the model
        // parameters, like any value aggregate does).
        let fold = |acc: &mut (u64, i64, i64, u64, u64), v: &modelardb::SegmentView<'_>| {
            acc.0 += 1;
            acc.1 = acc.1.min(v.start_time);
            acc.2 = acc.2.max(v.end_time);
            acc.3 += v.len() as u64;
            acc.4 += v.params.iter().map(|&b| u64::from(b)).sum::<u64>();
        };
        let empty = (0u64, i64::MAX, i64::MIN, 0u64, 0u64);
        let open_store = |dir: &std::path::Path, prefetch: usize| {
            modelardb::DiskStore::open_with(
                dir,
                modelardb::DiskStoreOptions {
                    bulk_write_size: BULK,
                    prefetch_depth: prefetch,
                    ..Default::default()
                },
            )
            .expect("reopen")
        };
        let pred = modelardb::SegmentPredicate::all();
        // The v1 owned-decode scan: every block is decoded into owned
        // `SegmentRecord`s before the fold sees it. The store is reopened
        // per pass so the block cache is cold, but the reopen itself (a
        // sidecar read, identical for both formats) stays outside the
        // timed region — the metric is scan throughput.
        let v1_pass = || {
            let store = open_store(&v1_dir, 0);
            timed(|| {
                let mut acc = empty;
                modelardb::SegmentStore::scan(&store, &pred, &mut |s| fold(&mut acc, &s.view()))
                    .expect("scan");
                acc
            })
        };
        // The v2 view scan: blocks validated once, folded through borrowed
        // views, optionally with the prefetcher reading ahead.
        let v2_pass = |prefetch: usize| {
            let store = open_store(&v2_dir, prefetch);
            timed(|| {
                let mut acc = empty;
                modelardb::SegmentStore::scan_runs(&store, &pred, &mut |run| {
                    for v in run.segments() {
                        fold(&mut acc, &v);
                    }
                })
                .expect("scan");
                acc
            })
        };
        let (want, _) = v1_pass();
        assert_eq!(want, v2_pass(0).0, "{}", ds.name);
        assert_eq!(want, v2_pass(PREFETCH).0, "{}", ds.name);
        let mut v1_elapsed = Duration::MAX;
        let mut v2_elapsed = Duration::MAX;
        let mut v2_prefetch_elapsed = Duration::MAX;
        for _ in 0..REPS {
            // Interleaved so machine-load drift cannot bias one path.
            let (acc, elapsed) = v1_pass();
            std::hint::black_box(acc);
            v1_elapsed = v1_elapsed.min(elapsed);
            let (acc, elapsed) = v2_pass(0);
            std::hint::black_box(acc);
            v2_elapsed = v2_elapsed.min(elapsed);
            let (acc, elapsed) = v2_pass(PREFETCH);
            std::hint::black_box(acc);
            v2_prefetch_elapsed = v2_prefetch_elapsed.min(elapsed);
        }
        let speedup = v1_elapsed.as_secs_f64() / v2_prefetch_elapsed.as_secs_f64().max(1e-9);

        // The adaptive scan shape these timings ran under (full span, no
        // value filter, auto parallelism).
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        let shape = modelardb::scan_shape(segments, false, workers);

        rows.push(vec![
            ds.name.clone(),
            segments.to_string(),
            blocks.to_string(),
            fmt_ms(v1_elapsed),
            fmt_ms(v2_elapsed),
            fmt_ms(v2_prefetch_elapsed),
            format!("{speedup:.2}x"),
            format!("{}/{}", shape.fold_size, shape.bypass_threshold),
        ]);
        entries.push(format!(
            concat!(
                "    {{\"dataset\": \"{}\", \"ticks\": {}, \"segments\": {}, \"blocks\": {}, ",
                "\"fold_size\": {}, \"bypass_threshold\": {}, ",
                "\"v1_scan_ms\": {:.3}, \"v2_scan_ms\": {:.3}, ",
                "\"v2_prefetch_scan_ms\": {:.3}, \"scan_speedup\": {:.3}}}"
            ),
            ds.name,
            ticks,
            segments,
            blocks,
            shape.fold_size,
            shape.bypass_threshold,
            v1_elapsed.as_secs_f64() * 1e3,
            v2_elapsed.as_secs_f64() * 1e3,
            v2_prefetch_elapsed.as_secs_f64() * 1e3,
            speedup,
        ));
        std::fs::remove_dir_all(&v1_dir).ok();
        std::fs::remove_dir_all(&v2_dir).ok();
    }
    print_figure(
        "Scan path: cold-cache full-span aggregates, v1 decode vs zero-copy v2 views",
        &[
            "Data set",
            "Segments",
            "Blocks",
            "v1 decode",
            "v2 views",
            "v2 + prefetch",
            "Speedup",
            "Shape",
        ],
        &rows,
    );
    let json = format!(
        "{{\n  \"scale\": \"{scale_name}\",\n  \"datasets\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    match std::fs::write("BENCH_scan.json", &json) {
        Ok(()) => println!("\nwrote BENCH_scan.json"),
        Err(e) => eprintln!("\nfailed to write BENCH_scan.json: {e}"),
    }
}

/// Collects every stored segment of a store in scan order.
fn store_segments(store: &modelardb::DiskStore) -> Vec<modelardb::SegmentRecord> {
    let mut out = Vec::new();
    modelardb::SegmentStore::scan(store, &modelardb::SegmentPredicate::all(), &mut |s| {
        out.push(s.clone())
    })
    .expect("scan");
    out
}

/// `sketch`: the metadata-only sketch path vs exact full scans, on a
/// disk-backed store, written to `BENCH_sketch.json`. Both paths answer the
/// same four questions — the 50th and 99th percentile of every stored
/// value, the distinct series count, and the five heaviest series. The
/// sketch path runs `P50_S`/`P99_S`/`COUNT_DISTINCT`/`TOP_K_S` SQL, which
/// resolves from per-block sketches without fetching a single segment body;
/// the exact path reconstructs every data point through the Data Point View
/// and computes nearest-rank percentiles and per-series counts from the
/// rows. The two paths are interleaved (fastest repetition wins) and the
/// gated `sketch_speedup` is their ratio.
fn sketch_rates(scale: Scale, scale_name: &str) {
    const REPS: usize = 7;
    const BULK: usize = 64;
    const K: usize = 5;
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for ds in [ep(SEED, scale).unwrap(), eh(SEED, scale).unwrap()] {
        let ticks = (ds.scale.ticks * 16).max(20_000);
        let dir = std::env::temp_dir().join(format!(
            "mdb-repro-sketch-{}-{}",
            std::process::id(),
            ds.name
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut db = build_disk_engine(&ds, &dir, 10.0, BULK, None);
        ingest_engine_batched(&mut db, &ds, ticks, 512);
        let segments = db.segment_count();

        let sketch_queries: Vec<String> = [
            "SELECT P50_S(*) FROM Segment".to_string(),
            "SELECT P99_S(*) FROM Segment".to_string(),
            "SELECT COUNT_DISTINCT(Tid) FROM Segment".to_string(),
            format!("SELECT TOP_K_S({K}) FROM Segment"),
        ]
        .to_vec();
        // The exact equivalents: reconstruct every point, sort for the
        // nearest-rank percentiles, and group for the distinct/top-k part.
        let exact_pass = |db: &modelardb::ModelarDb| {
            let mut values: Vec<f64> = db
                .sql("SELECT Value FROM DataPoint")
                .expect("value scan")
                .rows
                .iter()
                .map(|r| r[0].as_f64().expect("value"))
                .collect();
            values.sort_by(f64::total_cmp);
            let rank = |q: f64| {
                let r = (q / 100.0 * values.len() as f64).ceil() as usize;
                values[r.clamp(1, values.len()) - 1]
            };
            let counts = db
                .sql("SELECT Tid, COUNT(*) FROM DataPoint GROUP BY Tid")
                .expect("count scan");
            let mut per_tid: Vec<(i64, i64)> = counts
                .rows
                .iter()
                .map(|r| (r[0].as_i64().expect("tid"), r[1].as_i64().expect("count")))
                .collect();
            per_tid.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let top: i64 = per_tid.iter().take(K).map(|(_, c)| c).sum();
            (rank(50.0), rank(99.0), per_tid.len(), top)
        };

        let _ = run_queries(&db, &sketch_queries); // warm-up
        let _ = std::hint::black_box(exact_pass(&db));
        let mut sketch_elapsed = Duration::MAX;
        let mut exact_elapsed = Duration::MAX;
        for _ in 0..REPS {
            // Interleaved so machine-load drift cannot bias one path.
            sketch_elapsed = sketch_elapsed.min(run_queries(&db, &sketch_queries));
            let (_, elapsed) = timed(|| std::hint::black_box(exact_pass(&db)));
            exact_elapsed = exact_elapsed.min(elapsed);
        }
        let speedup = exact_elapsed.as_secs_f64() / sketch_elapsed.as_secs_f64().max(1e-9);

        rows.push(vec![
            ds.name.clone(),
            segments.to_string(),
            fmt_ms(sketch_elapsed),
            fmt_ms(exact_elapsed),
            format!("{speedup:.2}x"),
        ]);
        entries.push(format!(
            concat!(
                "    {{\"dataset\": \"{}\", \"ticks\": {}, \"segments\": {}, ",
                "\"sketch_ms\": {:.3}, \"exact_scan_ms\": {:.3}, \"sketch_speedup\": {:.3}}}"
            ),
            ds.name,
            ticks,
            segments,
            sketch_elapsed.as_secs_f64() * 1e3,
            exact_elapsed.as_secs_f64() * 1e3,
            speedup,
        ));
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
    print_figure(
        "Sketch functions: block-metadata sketches vs exact full scans",
        &[
            "Data set",
            "Segments",
            "Sketch path",
            "Exact scan",
            "Speedup",
        ],
        &rows,
    );
    let json = format!(
        "{{\n  \"scale\": \"{scale_name}\",\n  \"datasets\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    match std::fs::write("BENCH_sketch.json", &json) {
        Ok(()) => println!("\nwrote BENCH_sketch.json"),
        Err(e) => eprintln!("\nfailed to write BENCH_sketch.json: {e}"),
    }
}

/// `rollup`: whole-bucket time-hierarchy aggregates served from the
/// incrementally materialized rollup cells vs the full bucketed scan, on a
/// disk-backed store, written to `BENCH_rollup.json`. The two paths are the
/// *same query on the same engine* with serving toggled — they are
/// bit-identical by construction (asserted in-run), so the gated
/// `*_speedup` is a pure read-path ratio. The served pass is additionally
/// checked to perform **zero** block-cache fetches: a fully covered bucket
/// is answered from cells without touching a segment body.
fn rollup_rates(scale: Scale, scale_name: &str) {
    const REPS: usize = 7;
    const BULK: usize = 64;
    const N_QUERIES: usize = 20;
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for ds in [ep(SEED, scale).unwrap(), eh(SEED, scale).unwrap()] {
        let ticks = (ds.scale.ticks * 16).max(20_000);
        let dir = std::env::temp_dir().join(format!(
            "mdb-repro-rollup-{}-{}",
            std::process::id(),
            ds.name
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut db = build_disk_engine(&ds, &dir, 10.0, BULK, None);
        ingest_engine_batched(&mut db, &ds, ticks, 512);
        let segments = db.segment_count();
        let mut entry = format!(
            "    {{\"dataset\": \"{}\", \"ticks\": {ticks}, \"segments\": {segments}",
            ds.name
        );

        let classes: [(&str, String); 2] = [
            (
                "CUBE_SUM_HOUR",
                "SELECT Tid, CUBE_SUM_HOUR(*) FROM Segment GROUP BY Tid".to_string(),
            ),
            (
                "CUBE_AVG_DAY",
                "SELECT Tid, CUBE_AVG_DAY(*) FROM Segment GROUP BY Tid".to_string(),
            ),
        ];
        for (class, query) in &classes {
            let queries = vec![query.clone(); N_QUERIES];
            // Correctness choke before any timing: the served answer is the
            // scanned answer, and serving fetches no segment bodies.
            db.set_rollup_serve(true);
            let served = db.sql(query).expect("served query");
            let before = db.cache_stats();
            let _ = db.sql(query).expect("served query");
            let after = db.cache_stats();
            assert_eq!(
                (after.hits, after.misses, after.bytes_read),
                (before.hits, before.misses, before.bytes_read),
                "{}/{class}: the served pass must not fetch segment bodies",
                ds.name
            );
            db.set_rollup_serve(false);
            let scanned = db.sql(query).expect("scanned query");
            assert_eq!(
                served, scanned,
                "{}/{class}: served and scanned answers must be identical",
                ds.name
            );

            let mut served_elapsed = Duration::MAX;
            let mut scan_elapsed = Duration::MAX;
            for _ in 0..REPS {
                // Interleaved so machine-load drift cannot bias one path.
                db.set_rollup_serve(true);
                served_elapsed = served_elapsed.min(run_queries(&db, &queries));
                db.set_rollup_serve(false);
                scan_elapsed = scan_elapsed.min(run_queries(&db, &queries));
            }
            let speedup = scan_elapsed.as_secs_f64() / served_elapsed.as_secs_f64().max(1e-9);
            rows.push(vec![
                ds.name.clone(),
                (*class).into(),
                fmt_ms(served_elapsed),
                fmt_ms(scan_elapsed),
                format!("{speedup:.2}x"),
            ]);
            let key = class.to_ascii_lowercase();
            entry.push_str(&format!(
                ", \"{key}_served_ms\": {:.3}, \"{key}_scan_ms\": {:.3}, \"{key}_speedup\": {speedup:.3}",
                served_elapsed.as_secs_f64() * 1e3,
                scan_elapsed.as_secs_f64() * 1e3,
            ));
        }
        entry.push('}');
        entries.push(entry);
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
    print_figure(
        "Continuous aggregates: materialized rollup cells vs bucketed scans",
        &["Data set", "Aggregate", "Served", "Scanned", "Speedup"],
        &rows,
    );
    let json = format!(
        "{{\n  \"scale\": \"{scale_name}\",\n  \"datasets\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    match std::fs::write("BENCH_rollup.json", &json) {
        Ok(()) => println!("\nwrote BENCH_rollup.json"),
        Err(e) => eprintln!("\nfailed to write BENCH_rollup.json: {e}"),
    }
}

/// `query`: time-ranged `SUM_S`/`AVG_S` latency, plain sequential scan vs
/// the pruned-parallel path, on both data sets; written to
/// `BENCH_query.json`. Sixteen times the scale's ticks (at least 20,000)
/// are ingested so the zone map has runs to skip even at `--scale tiny`;
/// the two paths are measured in interleaved repetitions (so slow drift in
/// machine load cannot bias one side) and the fastest repetition per path
/// is reported.
fn query_rates(scale: Scale, scale_name: &str) {
    const REPS: usize = 7;
    const N_QUERIES: usize = 50;
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for ds in [ep(SEED, scale).unwrap(), eh(SEED, scale).unwrap()] {
        let ticks = (ds.scale.ticks * 16).max(20_000);
        // The baseline: no zone-map pruning, sequential scan. The candidate:
        // pruned runs, auto parallelism.
        let mut sequential = build_engine_with(&ds, true, 10.0, 1, false);
        ingest_engine_batched(&mut sequential, &ds, ticks, 512);
        let mut pruned = build_engine_with(&ds, true, 10.0, 0, true);
        ingest_engine_batched(&mut pruned, &ds, ticks, 512);
        // This experiment measures the *scan* paths: with rollup serving
        // left on, both engines would answer the whole-bucket interior of
        // every window from materialized cells and the gated speedups would
        // track cell lookups instead (the `rollup` experiment covers those).
        sequential.set_rollup_serve(false);
        pruned.set_rollup_serve(false);
        let segments = pruned.segment_count();
        let mut entry = format!(
            "    {{\"dataset\": \"{}\", \"ticks\": {ticks}, \"segments\": {segments}, \"queries_per_class\": {N_QUERIES}",
            ds.name
        );
        // Narrow time-ranged S-AGG (pruning does the work) plus full-span
        // L-AGG (the scan-pool parallelism does the work). Only the
        // time-ranged classes land in the JSON the CI gate compares:
        // full-span latency is dominated by the shared collect phase and
        // scheduler noise at tiny scale, which would make the gate flaky
        // (run the `query_latency` criterion bench for the L-AGG trend).
        let classes: [(&str, bool, Vec<String>); 3] = [
            (
                "SUM_S",
                true,
                time_ranged_queries(&ds, ticks, "SUM_S", N_QUERIES),
            ),
            (
                "AVG_S",
                true,
                time_ranged_queries(&ds, ticks, "AVG_S", N_QUERIES),
            ),
            (
                "L-AGG",
                false,
                vec!["SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid".to_string(); N_QUERIES / 10],
            ),
        ];
        for (class, gated, queries) in &classes {
            let _ = run_queries(&sequential, queries); // warm-up
            let _ = run_queries(&pruned, queries);
            let mut seq_elapsed = Duration::MAX;
            let mut pruned_elapsed = Duration::MAX;
            for _ in 0..REPS {
                seq_elapsed = seq_elapsed.min(run_queries(&sequential, queries));
                pruned_elapsed = pruned_elapsed.min(run_queries(&pruned, queries));
            }
            let speedup = seq_elapsed.as_secs_f64() / pruned_elapsed.as_secs_f64().max(1e-9);
            rows.push(vec![
                ds.name.clone(),
                (*class).into(),
                fmt_ms(seq_elapsed),
                fmt_ms(pruned_elapsed),
                format!("{speedup:.2}x"),
            ]);
            if *gated {
                let key = class.to_ascii_lowercase().replace('-', "_");
                entry.push_str(&format!(
                    ", \"{key}_sequential_ms\": {:.3}, \"{key}_pruned_parallel_ms\": {:.3}, \"{key}_speedup\": {speedup:.3}",
                    seq_elapsed.as_secs_f64() * 1e3,
                    pruned_elapsed.as_secs_f64() * 1e3,
                ));
            }
        }
        entry.push('}');
        entries.push(entry);
    }
    print_figure(
        "Query latency: sequential scan vs pruned-parallel (time-ranged S-AGG)",
        &[
            "Data set",
            "Aggregate",
            "Sequential",
            "Pruned-parallel",
            "Speedup",
        ],
        &rows,
    );
    let json = format!(
        "{{\n  \"scale\": \"{scale_name}\",\n  \"datasets\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    match std::fs::write("BENCH_query.json", &json) {
        Ok(()) => println!("\nwrote BENCH_query.json"),
        Err(e) => eprintln!("\nfailed to write BENCH_query.json: {e}"),
    }
}

/// The mixed query panel the `serve` experiment replays: time-ranged S-AGG
/// plus two grouped full-span aggregates, the dashboard-shaped workload a
/// network front-end serves.
fn serve_queries(ds: &Dataset, ticks: u64) -> Vec<String> {
    let mut queries = time_ranged_queries(ds, ticks, "SUM_S", 8);
    queries.push("SELECT Tid, COUNT_S(*), AVG_S(*) FROM Segment GROUP BY Tid ORDER BY Tid".into());
    queries
        .push("SELECT Category, AVG_S(*) FROM Segment GROUP BY Category ORDER BY Category".into());
    queries
}

/// `serve`: the networked front-end vs the in-process engine, written to
/// `BENCH_serve.json`. For each data set, a twin of the in-process engine
/// is put behind `mdb_server`, ingested over the wire, and checked for
/// **bit-identical** results on every panel query — single-client and under
/// the full concurrent load. Reported per data set:
///
/// * `serve_efficiency_speedup` — in-process panel time over single-client
///   remote panel time (a ratio of two same-machine runs, so it transfers
///   between machines; the CI gate compares it),
/// * `queries_per_sec`, `p50_ms`, `p99_ms` — throughput and latency with
///   `connections` concurrent client threads (32 at tiny, 128 at small,
///   256 at medium; ungated by default — they are hardware numbers),
/// * `concurrency_scaling` — concurrent throughput over single-client
///   throughput (reported, not gated: it tracks the core count).
fn serve_rates(scale: Scale, scale_name: &str) {
    const REPS: usize = 5;
    const ROUNDS: usize = 2; // panel replays per concurrent client
    let connections: usize = match scale_name {
        "tiny" => 32,
        "medium" => 256,
        _ => 128,
    };
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for ds in [ep(SEED, scale).unwrap(), eh(SEED, scale).unwrap()] {
        let ticks = ds.scale.ticks;
        let queries = serve_queries(&ds, ticks);

        // In-process reference: engine, results, and best panel time. Both
        // twins scan (rollup serving off) so the efficiency ratio keeps
        // measuring the front-end against real query work, not cell reads.
        let mut local = build_engine(&ds, true, 10.0);
        local.set_rollup_serve(false);
        ingest_engine_batched(&mut local, &ds, ticks, 512);
        let expected: Vec<QueryResult> = queries
            .iter()
            .map(|q| local.sql(q).expect("local"))
            .collect();
        let _ = run_queries(&local, &queries); // warm-up
        let mut local_elapsed = Duration::MAX;
        for _ in 0..REPS {
            local_elapsed = local_elapsed.min(run_queries(&local, &queries));
        }

        // The served twin, ingested over the wire by one writer.
        let mut remote_engine = build_engine(&ds, true, 10.0);
        remote_engine.set_rollup_serve(false);
        let server = Server::start(
            SharedDatastore::new(remote_engine),
            ServerOptions {
                max_connections: connections + 8,
                ..ServerOptions::default()
            },
        )
        .expect("server");
        let addr = server.local_addr();
        let mut writer = Client::connect(addr).expect("writer");
        let mut batch = RowBatch::with_capacity(ds.n_series(), 512);
        let mut tick = 0;
        while tick < ticks {
            let len = 512.min(ticks - tick);
            ds.fill_batch(tick, len, &mut batch);
            writer.ingest_batch(&batch).expect("wire ingest");
            tick += len;
        }
        writer.flush().expect("wire flush");

        // Single client: verify bit-identity, then time the panel.
        for (q, want) in queries.iter().zip(&expected) {
            assert_eq!(&writer.sql(q).expect("remote"), want, "{q}");
        }
        let mut remote_elapsed = Duration::MAX;
        for _ in 0..REPS {
            let (_, elapsed) = timed(|| {
                for q in &queries {
                    let _ = writer.sql(q).expect("remote");
                }
            });
            remote_elapsed = remote_elapsed.min(elapsed);
        }
        writer.close().expect("writer close");
        let efficiency = local_elapsed.as_secs_f64() / remote_elapsed.as_secs_f64().max(1e-9);
        let single_qps = queries.len() as f64 / remote_elapsed.as_secs_f64().max(1e-9);

        // The soak: `connections` concurrent clients replaying the panel,
        // every result still bit-identical.
        let (latencies, wall) = timed(|| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..connections)
                    .map(|c| {
                        let queries = &queries;
                        let expected = &expected;
                        scope.spawn(move || {
                            let mut client = Client::connect(addr).expect("soak connect");
                            let mut latencies = Vec::with_capacity(ROUNDS * queries.len());
                            for i in 0..ROUNDS * queries.len() {
                                let at = (c + i) % queries.len();
                                let (got, elapsed) =
                                    timed(|| client.sql(&queries[at]).expect("soak query"));
                                assert_eq!(got, expected[at], "client {c}: {}", queries[at]);
                                latencies.push(elapsed);
                            }
                            client.close().expect("soak close");
                            latencies
                        })
                    })
                    .collect();
                let mut all = Vec::new();
                for handle in handles {
                    all.extend(handle.join().expect("soak client"));
                }
                all
            })
        });
        server.shutdown().expect("server shutdown");

        let total = latencies.len() as f64;
        let qps = total / wall.as_secs_f64().max(1e-9);
        let mut sorted = latencies;
        sorted.sort_unstable();
        let percentile = |p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
        let p50 = percentile(0.50);
        let p99 = percentile(0.99);
        let scaling = qps / single_qps.max(1e-9);

        rows.push(vec![
            ds.name.clone(),
            format!("{connections}"),
            fmt_ms(local_elapsed),
            fmt_ms(remote_elapsed),
            format!("{efficiency:.2}x"),
            format!("{qps:.0} q/s"),
            fmt_ms(p50),
            fmt_ms(p99),
            format!("{scaling:.2}x"),
        ]);
        entries.push(format!(
            "    {{\"dataset\": \"{}\", \"ticks\": {ticks}, \"connections\": {connections}, \
             \"panel_queries\": {}, \"local_panel_ms\": {:.3}, \"remote_panel_ms\": {:.3}, \
             \"serve_efficiency_speedup\": {efficiency:.3}, \"queries_per_sec\": {qps:.1}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"concurrency_scaling\": {scaling:.3}}}",
            ds.name,
            queries.len(),
            local_elapsed.as_secs_f64() * 1e3,
            remote_elapsed.as_secs_f64() * 1e3,
            p50.as_secs_f64() * 1e3,
            p99.as_secs_f64() * 1e3,
        ));
    }
    print_figure(
        "Networked front-end: in-process vs remote, and the concurrent soak",
        &[
            "Data set",
            "Conns",
            "Local panel",
            "Remote panel",
            "Efficiency",
            "Throughput",
            "p50",
            "p99",
            "Scaling",
        ],
        &rows,
    );
    let json = format!(
        "{{\n  \"scale\": \"{scale_name}\",\n  \"datasets\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => println!("\nwrote BENCH_serve.json"),
        Err(e) => eprintln!("\nfailed to write BENCH_serve.json: {e}"),
    }
}

/// `gate`: compares a current `BENCH_*.json` against a committed baseline.
/// By default only *ratio* metrics (`*_speedup`) are gated — they compare a
/// path against an in-run baseline on the same machine, so they transfer
/// between the machine that committed the baseline and the machine running
/// the gate. `--absolute` additionally gates raw rates (`*_per_sec`) and
/// latencies (`*_ms`), which is only meaningful when baseline and current
/// come from the same hardware. A metric may not be worse than `tolerance`
/// times its baseline. Regressions print a report and exit 1; malformed
/// invocations exit 2 through the usage path.
fn gate(args: &[String]) -> Result<(), String> {
    let mut baseline = None;
    let mut current = None;
    let mut tolerance = 2.0f64;
    let mut absolute = false;
    let mut i = 0;
    while i < args.len() {
        let flag_value = |name: &str| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match args[i].as_str() {
            "--baseline" => baseline = Some(flag_value("--baseline")?),
            "--current" => current = Some(flag_value("--current")?),
            "--tolerance" => {
                tolerance = flag_value("--tolerance")?
                    .parse::<f64>()
                    .map_err(|_| "invalid --tolerance (expected a number)".to_string())?;
                if !tolerance.is_finite() || tolerance < 1.0 {
                    return Err("--tolerance must be at least 1.0".to_string());
                }
            }
            "--absolute" => {
                absolute = true;
                i += 1;
                continue;
            }
            other => return Err(format!("unknown gate option {other:?}")),
        }
        i += 2;
    }
    let baseline = baseline.ok_or_else(|| "gate requires --baseline <file>".to_string())?;
    let current = current.ok_or_else(|| "gate requires --current <file>".to_string())?;
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let base_text = read(&baseline)?;
    let current_text = read(&current)?;

    let base_scale = bench_scale(&base_text);
    let current_scale = bench_scale(&current_text);
    if base_scale != current_scale {
        return Err(format!(
            "scale mismatch: baseline is {:?}, current is {:?} — regenerate the baseline at the \
             scale the gate runs",
            base_scale.as_deref().unwrap_or("unknown"),
            current_scale.as_deref().unwrap_or("unknown"),
        ));
    }

    let (checked, failures, notices) = gate_report(&base_text, &current_text, tolerance, absolute);
    // A metric the current run has but the baseline lacks passes the gate
    // by construction — and would keep passing forever. Say so loudly (on
    // stderr, before any verdict) so the baseline gets regenerated instead
    // of the coverage gap going unnoticed.
    for notice in &notices {
        eprintln!("perf gate notice: {notice}");
    }
    // Failures first: if every baseline metric vanished from the current
    // file, `checked` is zero too, and reporting "no gateable metrics"
    // instead would hide the coverage loss behind a config-looking error.
    if !failures.is_empty() {
        eprintln!("perf gate FAILED against {baseline}:");
        for failure in &failures {
            eprintln!("  {failure}");
        }
        std::process::exit(1);
    }
    if checked == 0 {
        return Err(format!("no gateable metrics found in {baseline}"));
    }
    println!(
        "perf gate OK: {checked} metrics within {tolerance}x of {baseline} (scale {})",
        base_scale.as_deref().unwrap_or("?")
    );
    Ok(())
}

/// The pure comparison core of `gate`: every metric of the baseline is
/// looked up in the current run — a baseline metric that is *missing* from
/// the current file is a failure (the benchmark silently lost coverage),
/// not a skip — and the gateable ones (`*_speedup`; with `absolute` also
/// `*_per_sec` and `*_ms`) are compared under `tolerance`. The reverse
/// direction is reported too: a *new* metric the baseline has never seen
/// is ungated by construction, so it becomes a notice (not a failure) the
/// caller must surface. Returns the number of compared metrics, the
/// failure report, and the new-metric notices.
fn gate_report(
    base_text: &str,
    current_text: &str,
    tolerance: f64,
    absolute: bool,
) -> (usize, Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for (dataset, key, base_value) in &bench_metrics(base_text) {
        let Some(current_value) = bench_metric(current_text, dataset, key) else {
            failures.push(format!(
                "{dataset}/{key}: missing from current run — the gate would silently lose this metric"
            ));
            continue;
        };
        let (worse, kind) = if key.ends_with("_speedup") {
            (current_value < base_value / tolerance, "speedup fell")
        } else if absolute && key.ends_with("_per_sec") {
            (current_value < base_value / tolerance, "rate fell")
        } else if absolute && key.ends_with("_ms") {
            (current_value > base_value * tolerance, "latency rose")
        } else {
            continue; // counts, sizes, and (without --absolute) raw numbers
        };
        checked += 1;
        if worse {
            failures.push(format!(
                "{dataset}/{key}: {kind} beyond {tolerance}x (baseline {base_value:.3}, current {current_value:.3})"
            ));
        }
    }
    let notices = bench_metrics(current_text)
        .iter()
        .filter(|(dataset, key, _)| bench_metric(base_text, dataset, key).is_none())
        .map(|(dataset, key, _)| {
            format!(
                "NEW metric {dataset}/{key}: absent from the baseline — it passes ungated \
                 until the baseline is regenerated"
            )
        })
        .collect();
    (checked, failures, notices)
}

/// The top-level `"scale"` field of a `BENCH_*.json`, if present.
fn bench_scale(text: &str) -> Option<String> {
    for line in text.lines() {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        if key.trim().trim_matches(['{', '"']) == "scale" {
            return Some(value.trim().trim_matches([',', ' ', '"']).to_string());
        }
    }
    None
}

/// All `(dataset, key, value)` numeric metrics of a `BENCH_*.json` — the
/// files put one dataset object per line, so a full JSON parser is not
/// needed (and none is vendored).
fn bench_metrics(text: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for line in text.lines().filter(|l| l.contains("\"dataset\"")) {
        let mut dataset = None;
        let mut numbers = Vec::new();
        for part in line.split(',') {
            let Some((key, value)) = part.split_once(':') else {
                continue;
            };
            let key = key.trim().trim_matches(['{', ' ', '"']).to_string();
            let value = value.trim().trim_matches(['}', ' ']);
            if key == "dataset" {
                dataset = Some(value.trim_matches('"').to_string());
            } else if let Ok(number) = value.parse::<f64>() {
                numbers.push((key, number));
            }
        }
        if let Some(dataset) = dataset {
            out.extend(numbers.into_iter().map(|(k, v)| (dataset.clone(), k, v)));
        }
    }
    out
}

/// Looks one metric up in a `BENCH_*.json` text.
fn bench_metric(text: &str, dataset: &str, key: &str) -> Option<f64> {
    bench_metrics(text)
        .into_iter()
        .find(|(d, k, _)| d == dataset && k == key)
        .map(|(_, _, v)| v)
}

/// `ingest`: the tick-at-a-time vs batched ingestion rates on both data
/// sets, printed as a table and written to `BENCH_ingest.json`. Each path
/// is run several times and the fastest run is reported, so OS scheduling
/// noise does not masquerade as a path difference.
fn ingest_rates(scale: Scale, scale_name: &str) {
    const BATCH_SIZE: u64 = 512;
    const REPS: usize = 3;
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for ds in [ep(SEED, scale).unwrap(), eh(SEED, scale).unwrap()] {
        let ticks = ds.scale.ticks;
        let points = ds.count_data_points(ticks);
        let best =
            |run: &dyn Fn() -> Duration| (0..REPS).map(|_| run()).min().expect("at least one rep");
        let row_elapsed = best(&|| {
            let mut db = build_engine(&ds, true, 10.0);
            ingest_engine(&mut db, &ds, ticks)
        });
        let batch_elapsed = best(&|| {
            let mut db = build_engine(&ds, true, 10.0);
            ingest_engine_batched(&mut db, &ds, ticks, BATCH_SIZE)
        });
        let rows_per_sec = |d: Duration| ticks as f64 / d.as_secs_f64().max(1e-9);
        let speedup = row_elapsed.as_secs_f64() / batch_elapsed.as_secs_f64().max(1e-9);
        rows.push(vec![
            ds.name.clone(),
            "row-at-a-time".into(),
            format!("{:.0} rows/s", rows_per_sec(row_elapsed)),
            fmt_rate(points, row_elapsed),
        ]);
        rows.push(vec![
            ds.name.clone(),
            format!("batched ({BATCH_SIZE})"),
            format!("{:.0} rows/s", rows_per_sec(batch_elapsed)),
            fmt_rate(points, batch_elapsed),
        ]);
        entries.push(format!(
            concat!(
                "    {{\"dataset\": \"{}\", \"ticks\": {}, \"data_points\": {}, ",
                "\"row_rows_per_sec\": {:.1}, \"batch_rows_per_sec\": {:.1}, ",
                "\"row_points_per_sec\": {:.1}, \"batch_points_per_sec\": {:.1}, ",
                "\"batch_speedup\": {:.3}}}"
            ),
            ds.name,
            ticks,
            points,
            rows_per_sec(row_elapsed),
            rows_per_sec(batch_elapsed),
            points as f64 / row_elapsed.as_secs_f64().max(1e-9),
            points as f64 / batch_elapsed.as_secs_f64().max(1e-9),
            speedup,
        ));
    }
    print_figure(
        "Ingestion rate: tick-at-a-time vs batched (embedded engine)",
        &["Data set", "Path", "Rows", "Points"],
        &rows,
    );
    let json = format!(
        "{{\n  \"scale\": \"{scale_name}\",\n  \"batch_size\": {BATCH_SIZE},\n  \"datasets\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    match std::fs::write("BENCH_ingest.json", &json) {
        Ok(()) => println!("\nwrote BENCH_ingest.json"),
        Err(e) => eprintln!("\nfailed to write BENCH_ingest.json: {e}"),
    }
}

/// Table 1: the configuration actually used.
fn table1() {
    let config = modelardb::Config::default();
    print_figure(
        "Table 1: Evaluation environment (this reproduction)",
        &["Setting", "Value"],
        &[
            vec![
                "System".into(),
                "ModelarDB+ reproduction (Rust, this repo)".into(),
            ],
            vec!["Model Error Bound".into(), "0%, 1%, 5%, 10%".into()],
            vec![
                "Model Length Limit".into(),
                config.compression.length_limit.to_string(),
            ],
            vec![
                "Dynamic Split Fraction".into(),
                format!("{}", config.compression.split_fraction),
            ],
            vec!["Bulk Write Size".into(), config.bulk_write_size.to_string()],
            vec![
                "Baselines".into(),
                "InfluxDB-like, Cassandra-like, Parquet-like, ORC-like".into(),
            ],
            vec![
                "Data sets".into(),
                "synthetic EP (SI=60s), EH (SI=100ms); mdb-datagen, seed 42".into(),
            ],
        ],
    );
}

/// Figure 13: ingestion rate, EP (single node per system + cluster B-6/O-6).
fn fig13(scale: Scale) {
    let ds = ep(SEED, scale).unwrap();
    let ticks = ds.scale.ticks;
    let points = ds.count_data_points(ticks);
    let mut rows = Vec::new();

    for mut store in baseline_stores() {
        let elapsed = ingest_baseline(store.as_mut(), &ds, ticks);
        rows.push(vec![
            format!("B-1 {}", store.name()),
            fmt_rate(points, elapsed),
        ]);
    }
    for (label, correlated) in [("B-1 ModelarDBv1", false), ("B-1 ModelarDBv2", true)] {
        let mut db = build_engine(&ds, correlated, 10.0);
        let elapsed = ingest_engine(&mut db, &ds, ticks);
        rows.push(vec![label.into(), fmt_rate(points, elapsed)]);
    }
    // B-6 / O-6: six workers, bulk vs online analytics.
    for (label, with_queries) in [("B-6 ModelarDBv2", false), ("O-6 ModelarDBv2", true)] {
        let catalog = catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap();
        let cluster = Cluster::start(
            catalog,
            Arc::new(ModelRegistry::standard()),
            CompressionConfig {
                error_bound: ErrorBound::relative(10.0),
                ..Default::default()
            },
            6,
        )
        .unwrap();
        let (_, elapsed) = timed(|| {
            for tick in 0..ticks {
                cluster
                    .ingest_row(ds.timestamp(tick), &ds.row(tick))
                    .unwrap();
                if with_queries && tick % 500 == 0 {
                    let tid = tick % ds.n_series() as u64 + 1;
                    let _ =
                        cluster.sql(&format!("SELECT COUNT_S(*) FROM Segment WHERE Tid = {tid}"));
                }
            }
            cluster.flush().unwrap();
        });
        rows.push(vec![label.into(), fmt_rate(points, elapsed)]);
        cluster.shutdown().unwrap();
    }
    print_figure(
        "Figure 13: Ingestion rate, EP",
        &["Scenario", "Rate"],
        &rows,
    );
}

/// Figures 14 and 15: storage per system and error bound.
fn storage_figure(title: &str, ds: &Dataset, _scale: Scale) {
    let ticks = ds.scale.ticks;
    let mut rows = Vec::new();
    for mut store in baseline_stores() {
        ingest_baseline(store.as_mut(), ds, ticks);
        rows.push(vec![
            store.name().into(),
            "0%".into(),
            fmt_bytes(store.size_bytes()),
        ]);
    }
    for pct in BOUNDS {
        let mut v1 = build_engine(ds, false, pct);
        ingest_engine(&mut v1, ds, ticks);
        rows.push(vec![
            "ModelarDBv1".into(),
            format!("{pct}%"),
            fmt_bytes(v1.storage_bytes()),
        ]);
        let mut v2 = build_engine(ds, true, pct);
        ingest_engine(&mut v2, ds, ticks);
        rows.push(vec![
            "ModelarDBv2".into(),
            format!("{pct}%"),
            fmt_bytes(v2.storage_bytes()),
        ]);
    }
    print_figure(title, &["System", "Error bound", "Size"], &rows);
}

/// Figures 16 and 17: which models MMGC selects per error bound.
fn models_figure(title: &str, ds: &Dataset, _scale: Scale) {
    let ticks = ds.scale.ticks;
    let mut rows = Vec::new();
    for pct in BOUNDS {
        let mut db = build_engine(ds, true, pct);
        ingest_engine(&mut db, ds, ticks);
        let shares = db.stats().model_shares();
        let mut row = vec![format!("{pct}%")];
        for (_, share) in &shares {
            row.push(format!("{share:.2}%"));
        }
        rows.push(row);
    }
    let registry = ModelRegistry::standard();
    let names = registry.names();
    let mut header: Vec<&str> = vec!["Bound"];
    header.extend(names.iter().copied());
    print_figure(title, &header, &rows);
}

/// Figure 18: storage vs correlation distance.
fn fig18(scale: Scale) {
    let mut rows = Vec::new();
    for (name, ds) in [
        ("EP", ep(SEED, scale).unwrap()),
        ("EH", eh(SEED, scale).unwrap()),
    ] {
        let lowest = mdb_partitioner::lowest_distance(&ds.dimensions);
        let mut distances = vec![0.0, lowest, 0.25, 0.34, 0.42, 0.50];
        distances.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        distances.sort_by(|a, b| a.partial_cmp(b).unwrap());
        distances.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        for distance in distances {
            for pct in [0.0, 10.0] {
                let spec = CorrelationSpec::distance(distance);
                let catalog = catalog_from_dataset(&ds, &spec).unwrap();
                let mut config = modelardb::Config::default();
                config.compression.error_bound = ErrorBound::relative(pct);
                let mut db = modelardb::ModelarDb::from_catalog(
                    catalog,
                    Arc::new(ModelRegistry::standard()),
                    config,
                )
                .unwrap();
                ingest_engine(&mut db, &ds, ds.scale.ticks);
                rows.push(vec![
                    format!("{name} ({pct}%)"),
                    format!("{distance:.3}"),
                    fmt_bytes(db.storage_bytes()),
                ]);
            }
        }
    }
    print_figure(
        "Figure 18: Storage vs maximum distance",
        &["Data set", "Distance", "Size"],
        &rows,
    );
}

/// Figure 19: L-AGG runtime, EP, per system (SV and DPV for ModelarDB).
fn fig19(scale: Scale) {
    let ds = ep(SEED, scale).unwrap();
    let ticks = ds.scale.ticks;
    let mut rows = Vec::new();
    // Baselines: full-store aggregate scans.
    for mut store in baseline_stores() {
        ingest_baseline(store.as_mut(), &ds, ticks);
        let (_, elapsed) = timed(|| {
            for _ in 0..4 {
                store.aggregate(None, i64::MIN, i64::MAX).unwrap();
            }
        });
        rows.push(vec![format!("S {}", store.name()), fmt_ms(elapsed)]);
    }
    for (label, correlated) in [("ModelarDBv1", false), ("ModelarDBv2", true)] {
        let mut db = build_engine(&ds, correlated, 10.0);
        ingest_engine(&mut db, &ds, ticks);
        let mut w = Workloads::new(&ds, ticks, 7);
        let sv = run_queries(&db, &w.l_agg(4));
        rows.push(vec![format!("SV {label}"), fmt_ms(sv)]);
        let dpv = run_queries(&db, &w.l_agg_data_point(4));
        rows.push(vec![format!("DPV {label}"), fmt_ms(dpv)]);
    }
    print_figure(
        "Figure 19: L-AGG, EP",
        &["Interface/System", "Runtime"],
        &rows,
    );
}

/// Figure 20: scale-out 1–32 nodes, weak scaling, Segment vs Data Point
/// View. Per-worker times are measured; the cluster latency is the slowest
/// worker (no shuffling, Section 7.3), so the relative increase is
/// `nodes × t(1-node unit) / max(worker times)`.
fn fig20(scale: Scale) {
    let mut rows = Vec::new();
    for nodes in [1usize, 2, 4, 8, 16, 32] {
        // Weak scaling: data grows with the node count.
        let ds = ep(
            SEED,
            Scale {
                clusters: scale.clusters * nodes,
                ..scale
            },
        )
        .unwrap();
        let catalog = catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap();
        let cluster = Cluster::start(
            catalog,
            Arc::new(ModelRegistry::standard()),
            CompressionConfig {
                error_bound: ErrorBound::relative(10.0),
                ..Default::default()
            },
            nodes,
        )
        .unwrap();
        for tick in 0..ds.scale.ticks {
            cluster
                .ingest_row(ds.timestamp(tick), &ds.row(tick))
                .unwrap();
        }
        cluster.flush().unwrap();
        // Warm up, then take the per-worker minimum over repetitions so OS
        // scheduling noise does not masquerade as a slow node; the cluster
        // latency is the max over workers of those steady-state times.
        let steady = |sql: &str| -> Vec<Duration> {
            let mut best: Vec<Duration> = cluster.worker_times_isolated(sql).unwrap();
            for _ in 0..4 {
                for (b, t) in best
                    .iter_mut()
                    .zip(cluster.worker_times_isolated(sql).unwrap())
                {
                    *b = (*b).min(t);
                }
            }
            best
        };
        let _ = cluster.sql("SELECT COUNT_S(*) FROM Segment"); // warm-up
        let sv_times = steady("SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid");
        let dpv_times = steady("SELECT Tid, SUM(Value) FROM DataPoint GROUP BY Tid");
        let sv_max = sv_times.iter().max().copied().unwrap_or_default();
        let dpv_max = dpv_times.iter().max().copied().unwrap_or_default();
        rows.push((nodes, sv_max, dpv_max));
        cluster.shutdown().unwrap();
    }
    let (base_sv, base_dpv) = (rows[0].1, rows[0].2);
    let rel = |nodes: usize, t: Duration, base: Duration| {
        nodes as f64 * base.as_secs_f64() / t.as_secs_f64().max(1e-9)
    };
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, sv, dpv)| {
            vec![
                n.to_string(),
                format!("{:.2}x", rel(*n, *sv, base_sv)),
                format!("{:.2}x", rel(*n, *dpv, base_dpv)),
            ]
        })
        .collect();
    print_figure(
        "Figure 20: Scale-out (relative increase, weak scaling)",
        &["Nodes", "Segment View", "Data Point View"],
        &table,
    );
}

/// Figures 21 and 22: S-AGG runtimes.
fn s_agg_figure(title: &str, ds: &Dataset, _scale: Scale) {
    let ticks = ds.scale.ticks;
    let n_queries = 20;
    let mut rows = Vec::new();
    for mut store in baseline_stores() {
        ingest_baseline(store.as_mut(), ds, ticks);
        // The S-AGG shape for the baselines: single-tid + 5-tid aggregates.
        let (_, elapsed) = timed(|| {
            for i in 0..n_queries as u32 {
                let tid = i % ds.n_series() as u32 + 1;
                if i % 2 == 0 {
                    store.aggregate(Some(&[tid]), i64::MIN, i64::MAX).unwrap();
                } else {
                    let tids: Vec<u32> = (0..5)
                        .map(|k| (tid + k - 1) % ds.n_series() as u32 + 1)
                        .collect();
                    store.aggregate(Some(&tids), i64::MIN, i64::MAX).unwrap();
                }
            }
        });
        rows.push(vec![format!("S {}", store.name()), fmt_ms(elapsed)]);
    }
    for (label, correlated) in [("ModelarDBv1", false), ("ModelarDBv2", true)] {
        let mut db = build_engine(ds, correlated, 10.0);
        ingest_engine(&mut db, ds, ticks);
        let queries = Workloads::new(ds, ticks, 7).s_agg(n_queries);
        let elapsed = run_queries(&db, &queries);
        rows.push(vec![format!("SV {label}"), fmt_ms(elapsed)]);
    }
    print_figure(title, &["Interface/System", "Runtime"], &rows);
}

/// Figures 23 and 24: point/range extraction runtimes.
fn pr_figure(title: &str, ds: &Dataset, _scale: Scale) {
    let ticks = ds.scale.ticks;
    let n_queries = 30;
    let mut rows = Vec::new();
    for mut store in baseline_stores() {
        ingest_baseline(store.as_mut(), ds, ticks);
        let (_, elapsed) = timed(|| {
            for i in 0..n_queries as u64 {
                let tid = (i % ds.n_series() as u64) as u32 + 1;
                let tick = i * 37 % ticks;
                let from = ds.timestamp(tick);
                let to = ds.timestamp((tick + 100).min(ticks - 1));
                let mut sink = 0usize;
                store
                    .scan_points(tid, from, to, &mut |_, _| sink += 1)
                    .unwrap();
                std::hint::black_box(sink);
            }
        });
        rows.push(vec![format!("S {}", store.name()), fmt_ms(elapsed)]);
    }
    for (label, correlated) in [("ModelarDBv1", false), ("ModelarDBv2", true)] {
        let mut db = build_engine(ds, correlated, 10.0);
        ingest_engine(&mut db, ds, ticks);
        let queries = Workloads::new(ds, ticks, 7).point_range(n_queries);
        let elapsed = run_queries(&db, &queries);
        rows.push(vec![format!("DPV {label}"), fmt_ms(elapsed)]);
    }
    print_figure(title, &["Interface/System", "Runtime"], &rows);
}

/// Figures 25–28: multi-dimensional aggregates (Algorithm 6).
fn m_agg_figure(title: &str, ds: &Dataset, _scale: Scale, drill_down: bool) {
    let ticks = ds.scale.ticks;
    let n_queries = 6;
    let mut rows = Vec::new();
    let level_name = match (ds.name.as_str(), drill_down) {
        ("EP", false) => "Type",
        ("EP", true) => "Entity",
        (_, false) => "Park",
        (_, true) => "Entity",
    };
    let level = ds.dimensions.resolve_level(level_name).unwrap();
    for mut store in baseline_stores() {
        ingest_baseline(store.as_mut(), ds, ticks);
        let (_, elapsed) = timed(|| {
            for _ in 0..n_queries {
                std::hint::black_box(baseline_m_agg(
                    store.as_ref(),
                    ds,
                    level,
                    i64::MIN,
                    i64::MAX,
                ));
            }
        });
        rows.push(vec![format!("S {}", store.name()), fmt_ms(elapsed)]);
    }
    let mut db = build_engine(ds, true, 10.0);
    ingest_engine(&mut db, ds, ticks);
    let queries = Workloads::new(ds, ticks, 7).m_agg(n_queries, drill_down);
    let elapsed = run_queries(&db, &queries);
    rows.push(vec!["SV ModelarDBv2".into(), fmt_ms(elapsed)]);
    print_figure(title, &["Interface/System", "Runtime"], &rows);
}

/// The Section 5.2 experiment: MMC vs MMGC on three correlated
/// turbine-temperature series, per error bound.
fn mgc_ablation() {
    let ds = ep(
        SEED,
        Scale {
            clusters: 1,
            series_per_cluster: 3,
            ticks: 20_000,
        },
    )
    .unwrap();
    let mut rows = Vec::new();
    for pct in BOUNDS {
        let mut mmc = build_engine(&ds, false, pct);
        ingest_engine(&mut mmc, &ds, ds.scale.ticks);
        let mut mmgc = build_engine(&ds, true, pct);
        ingest_engine(&mut mmgc, &ds, ds.scale.ticks);
        let reduction = (1.0 - mmgc.storage_bytes() as f64 / mmc.storage_bytes() as f64) * 100.0;
        rows.push(vec![
            format!("{pct}%"),
            fmt_bytes(mmc.storage_bytes()),
            fmt_bytes(mmgc.storage_bytes()),
            format!("{reduction:.2}%"),
        ]);
    }
    print_figure(
        "Section 5.2: MMC vs MMGC on three correlated series",
        &["Bound", "MMC (v1)", "MMGC (v2)", "Reduction"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::gate_report;

    const BASE: &str = r#"{
  "scale": "small",
  "datasets": [
    {"dataset": "EP", "segments": 100, "reopen_speedup": 4.0, "sidecar_reopen_ms": 2.0},
    {"dataset": "EH", "segments": 200, "reopen_speedup": 3.0, "sidecar_reopen_ms": 5.0}
  ]
}
"#;

    #[test]
    fn unchanged_metrics_pass() {
        let (checked, failures, notices) = gate_report(BASE, BASE, 2.0, false);
        assert_eq!(checked, 2, "both speedups compared");
        assert_eq!(failures, Vec::<String>::new());
        assert_eq!(notices, Vec::<String>::new());
        // With --absolute the latencies are gated too.
        let (checked, failures, _) = gate_report(BASE, BASE, 2.0, true);
        assert_eq!(checked, 4);
        assert_eq!(failures, Vec::<String>::new());
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let current = BASE.replace("\"reopen_speedup\": 4.0", "\"reopen_speedup\": 1.5");
        let (checked, failures, _) = gate_report(BASE, &current, 2.0, false);
        assert_eq!(checked, 2);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("EP/reopen_speedup"), "{failures:?}");
        // 1.5 is within 2x of 3.0, so EH passes; and 2.5 would pass for EP.
        let current = BASE.replace("\"reopen_speedup\": 4.0", "\"reopen_speedup\": 2.5");
        let (_, failures, _) = gate_report(BASE, &current, 2.0, false);
        assert_eq!(failures, Vec::<String>::new());
    }

    #[test]
    fn baseline_metric_missing_from_current_fails_loudly() {
        // A renamed or dropped metric must fail the gate, not shrink its
        // coverage: lose one metric from one dataset...
        let current = BASE.replace(", \"reopen_speedup\": 4.0", "");
        let (checked, failures, _) = gate_report(BASE, &current, 2.0, false);
        assert_eq!(checked, 1, "the surviving EH speedup is still compared");
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].contains("EP/reopen_speedup") && failures[0].contains("missing"),
            "{failures:?}"
        );
        // ...and the pathological case: current shares nothing with the
        // baseline, so checked == 0 AND every metric is a failure. The
        // failures must win over any "no gateable metrics" report.
        let (checked, failures, _) = gate_report(BASE, "{}", 2.0, false);
        assert_eq!(checked, 0);
        assert_eq!(failures.len(), 6, "every baseline metric reported missing");
    }

    #[test]
    fn new_metric_absent_from_baseline_is_reported_not_failed() {
        // A metric added by the current run passes by construction (nothing
        // gates it) — that must produce a loud notice, never silence.
        let current = BASE.replace(
            "\"reopen_speedup\": 4.0",
            "\"reopen_speedup\": 4.0, \"rollup_speedup\": 9.0",
        );
        let (checked, failures, notices) = gate_report(BASE, &current, 2.0, false);
        assert_eq!(checked, 2, "the known speedups are still compared");
        assert_eq!(
            failures,
            Vec::<String>::new(),
            "a new metric is not a failure"
        );
        assert_eq!(notices.len(), 1);
        assert!(
            notices[0].contains("NEW metric EP/rollup_speedup")
                && notices[0].contains("absent from the baseline"),
            "{notices:?}"
        );
    }
}

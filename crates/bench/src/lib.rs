//! Shared harness for regenerating the paper's evaluation (Section 7).
//!
//! Everything here is deliberately deterministic: data sets come from
//! `mdb-datagen` with fixed seeds, ModelarDB+ instances are built from the
//! same correlation hints the paper reports using, and the baselines ingest
//! the identical data points with their denormalized dimensions.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mdb_baselines::TimeSeriesStore;
use mdb_cluster::Cluster;
use mdb_datagen::Dataset;
use mdb_partitioner::{partition, CorrelationSpec};
use mdb_types::{time as mdbtime, Gid, GroupMeta, Result, Tid, TimeLevel};
use modelardb::{
    Catalog, Config, ErrorBound, ModelRegistry, ModelarDb, QueryResult, RowBatch, StorageSpec,
};

/// Builds the metadata catalog for a data set under a correlation spec
/// (Algorithm 1), ready for the engine or the cluster runtime.
pub fn catalog_from_dataset(ds: &Dataset, spec: &CorrelationSpec) -> Result<Arc<Catalog>> {
    let parts = partition(&ds.series, &ds.dimensions, spec, &ds.sources)?;
    let mut catalog = Catalog::new();
    catalog.dimensions = ds.dimensions.clone();
    for (i, group_tids) in parts.groups.iter().enumerate() {
        let gid = (i + 1) as Gid;
        for (j, tid) in group_tids.iter().enumerate() {
            let mut meta = ds.series.iter().find(|m| m.tid == *tid).unwrap().clone();
            meta.gid = gid;
            meta.scaling = parts.scaling[i][j];
            catalog.series.push(meta);
        }
        catalog.groups.push(GroupMeta {
            gid,
            tids: group_tids.clone(),
            sampling_interval: ds.profile.si_ms,
        });
    }
    catalog.series.sort_by_key(|m| m.tid);
    let registry = ModelRegistry::standard();
    catalog.model_names = registry.names().iter().map(|s| s.to_string()).collect();
    Ok(Arc::new(catalog))
}

/// Builds an embedded engine for a data set. `correlated = false` disables
/// grouping — the ModelarDBv1 baseline (MMC only); `true` uses the data
/// set's evaluation correlation hints (MMGC).
pub fn build_engine(ds: &Dataset, correlated: bool, error_pct: f64) -> ModelarDb {
    build_engine_with(ds, correlated, error_pct, 0, true)
}

/// Like [`build_engine`], but with the query-path knobs exposed: the scan
/// `parallelism` (0 = auto, 1 = sequential) and whether zone-map `pruning`
/// is enabled. `(1, false)` is the plain sequential scan the `repro query`
/// experiment baselines against.
pub fn build_engine_with(
    ds: &Dataset,
    correlated: bool,
    error_pct: f64,
    parallelism: usize,
    pruning: bool,
) -> ModelarDb {
    let spec = if correlated {
        ds.correlation_spec()
    } else {
        CorrelationSpec::none()
    };
    let catalog = catalog_from_dataset(ds, &spec).expect("catalog");
    let mut config = Config::default();
    config.compression.error_bound = ErrorBound::relative(error_pct);
    config.storage = StorageSpec::Memory;
    config.query_parallelism = parallelism;
    config.zone_pruning = pruning;
    ModelarDb::from_catalog(catalog, Arc::new(ModelRegistry::standard()), config).expect("engine")
}

/// Builds an embedded engine persisting to an out-of-core
/// [`modelardb::DiskStore`] under `dir` (correlated grouping, the data
/// set's evaluation hints):
/// `bulk_write_size` segments per log block and `memory_budget_bytes` for
/// the block cache — the knobs the `repro storage` experiment sweeps.
pub fn build_disk_engine(
    ds: &Dataset,
    dir: &std::path::Path,
    error_pct: f64,
    bulk_write_size: usize,
    memory_budget_bytes: Option<u64>,
) -> ModelarDb {
    build_disk_engine_with(
        ds,
        dir,
        error_pct,
        bulk_write_size,
        memory_budget_bytes,
        Config::default().prefetch_depth,
        Config::default().block_format,
    )
}

/// Like [`build_disk_engine`], but with the scan-path knobs the
/// `repro scan` experiment sweeps: the prefetch depth (`0` = off) and the
/// on-disk block layout for newly written blocks.
pub fn build_disk_engine_with(
    ds: &Dataset,
    dir: &std::path::Path,
    error_pct: f64,
    bulk_write_size: usize,
    memory_budget_bytes: Option<u64>,
    prefetch_depth: usize,
    block_format: modelardb::BlockFormat,
) -> ModelarDb {
    let catalog = catalog_from_dataset(ds, &ds.correlation_spec()).expect("catalog");
    let mut config = Config::default();
    config.compression.error_bound = ErrorBound::relative(error_pct);
    config.storage = StorageSpec::Disk(dir.to_path_buf());
    config.bulk_write_size = bulk_write_size;
    config.memory_budget_bytes = memory_budget_bytes;
    config.prefetch_depth = prefetch_depth;
    config.block_format = block_format;
    ModelarDb::from_catalog(catalog, Arc::new(ModelRegistry::standard()), config).expect("engine")
}

/// Deterministic time-ranged S-AGG queries: `func` over a sliding window of
/// about 1/32 of the ingested span, grouped by Tid — the query class whose
/// latency `BENCH_query.json` tracks (segments outside the window should be
/// pruned, not scanned).
pub fn time_ranged_queries(ds: &Dataset, ticks: u64, func: &str, n: usize) -> Vec<String> {
    let window = (ticks / 32).max(1);
    let span = ticks.saturating_sub(window).max(1);
    (0..n as u64)
        .map(|i| {
            let start = (i * 13 * window / 8) % span;
            let from = ds.timestamp(start);
            let to = ds.timestamp(start + window);
            format!(
                "SELECT Tid, {func}(*) FROM Segment WHERE TS >= {from} AND TS <= {to} GROUP BY Tid"
            )
        })
        .collect()
}

/// Ingests `ticks` ticks of `ds` into an engine one tick at a time,
/// returning the wall time.
pub fn ingest_engine(db: &mut ModelarDb, ds: &Dataset, ticks: u64) -> Duration {
    let start = Instant::now();
    for tick in 0..ticks {
        db.ingest_row(ds.timestamp(tick), &ds.row(tick))
            .expect("ingest");
    }
    db.flush().expect("flush");
    start.elapsed()
}

/// Ingests `ticks` ticks of `ds` into an engine through the columnar batch
/// path in batches of `batch_size` rows, returning the wall time. One batch
/// is filled in place and reused, so the loop itself allocates nothing.
pub fn ingest_engine_batched(
    db: &mut ModelarDb,
    ds: &Dataset,
    ticks: u64,
    batch_size: u64,
) -> Duration {
    let batch_size = batch_size.max(1);
    let mut batch = RowBatch::with_capacity(ds.n_series(), batch_size as usize);
    let start = Instant::now();
    let mut tick = 0;
    while tick < ticks {
        let len = batch_size.min(ticks - tick);
        ds.fill_batch(tick, len, &mut batch);
        db.ingest_batch(&batch).expect("ingest");
        tick += len;
    }
    db.flush().expect("flush");
    start.elapsed()
}

/// Ingests `ticks` ticks of `ds` into a cluster one tick at a time,
/// returning the wall time.
pub fn ingest_cluster(cluster: &Cluster, ds: &Dataset, ticks: u64) -> Duration {
    let start = Instant::now();
    for tick in 0..ticks {
        cluster
            .ingest_row(ds.timestamp(tick), &ds.row(tick))
            .expect("ingest");
    }
    cluster.flush().expect("flush");
    start.elapsed()
}

/// Ingests `ticks` ticks of `ds` into a cluster through the batched routing
/// path in batches of `batch_size` rows, returning the wall time.
pub fn ingest_cluster_batched(
    cluster: &Cluster,
    ds: &Dataset,
    ticks: u64,
    batch_size: u64,
) -> Duration {
    let batch_size = batch_size.max(1);
    let mut batch = RowBatch::with_capacity(ds.n_series(), batch_size as usize);
    let start = Instant::now();
    let mut tick = 0;
    while tick < ticks {
        let len = batch_size.min(ticks - tick);
        ds.fill_batch(tick, len, &mut batch);
        cluster.ingest_batch(&batch).expect("ingest");
        tick += len;
    }
    cluster.flush().expect("flush");
    start.elapsed()
}

/// The denormalized dimension strings of a tid (what the paper appends to
/// every data point for the existing formats).
pub fn dim_strings(ds: &Dataset, tid: Tid) -> Vec<String> {
    let mut out = Vec::new();
    for (d, schema) in ds.dimensions.schemas().iter().enumerate() {
        for level in 1..=schema.height() {
            if let Some(m) = ds.dimensions.member(tid, d, level) {
                out.push(ds.dimensions.member_name(m).to_string());
            }
        }
    }
    out
}

/// Ingests `ticks` ticks into a baseline store, returning the wall time.
pub fn ingest_baseline(store: &mut dyn TimeSeriesStore, ds: &Dataset, ticks: u64) -> Duration {
    // Pre-compute the denormalized dimensions once (the paper uses an
    // in-memory cache for exactly this).
    let dims: HashMap<Tid, Vec<String>> = ds
        .tids()
        .into_iter()
        .map(|t| (t, dim_strings(ds, t)))
        .collect();
    let start = Instant::now();
    for tick in 0..ticks {
        let ts = ds.timestamp(tick);
        for (i, value) in ds.row(tick).into_iter().enumerate() {
            let Some(value) = value else { continue };
            let tid = i as Tid + 1;
            let refs: Vec<&str> = dims[&tid].iter().map(String::as_str).collect();
            store
                .ingest(tid, ts, value, &refs)
                .expect("baseline ingest");
        }
    }
    store.flush().expect("baseline flush");
    start.elapsed()
}

/// All four baseline stores, freshly constructed.
pub fn baseline_stores() -> Vec<Box<dyn TimeSeriesStore>> {
    vec![
        Box::new(mdb_baselines::InfluxLike::new()),
        Box::new(mdb_baselines::CassandraLike::new()),
        Box::new(mdb_baselines::ParquetLike::new()),
        Box::new(mdb_baselines::OrcLike::new()),
    ]
}

/// Times a closure.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Runs a list of SQL queries against an engine, returning total wall time.
pub fn run_queries(db: &ModelarDb, queries: &[String]) -> Duration {
    let start = Instant::now();
    for q in queries {
        let _ = db.sql(q).expect("query");
    }
    start.elapsed()
}

/// A baseline's equivalent of the M-AGG workload: filter the tids carrying
/// the production member, scan their points, and bucket client-side by
/// month and by the grouping member — the work a Spark job does for these
/// formats.
pub fn baseline_m_agg(
    store: &dyn TimeSeriesStore,
    ds: &Dataset,
    group_level: (usize, usize),
    from: i64,
    to: i64,
) -> usize {
    let mut buckets: HashMap<(String, i64), (f64, u64)> = HashMap::new();
    for tid in ds.tids() {
        let member = ds
            .dimensions
            .member(tid, group_level.0, group_level.1)
            .map(|m| ds.dimensions.member_name(m).to_string())
            .unwrap_or_default();
        store
            .scan_points(tid, from, to, &mut |ts, v| {
                let month = mdbtime::part(TimeLevel::Month, ts);
                let e = buckets.entry((member.clone(), month)).or_insert((0.0, 0));
                e.0 += f64::from(v);
                e.1 += 1;
            })
            .expect("scan");
    }
    buckets.len()
}

/// Pretty-prints one figure's data as aligned rows.
pub fn print_figure(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = header
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:<w$}", h, w = widths[i]))
        .collect();
    println!("{}", line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats bytes with a stable unit.
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MiB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.2} KiB", bytes as f64 / 1024.0)
    }
}

/// Formats a duration in milliseconds.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.1} ms", d.as_secs_f64() * 1e3)
}

/// Formats a throughput in data points per second.
pub fn fmt_rate(points: u64, d: Duration) -> String {
    format!("{:.2} Mdp/s", points as f64 / d.as_secs_f64() / 1e6)
}

/// Extracts the single numeric value of a one-row/one-column result.
pub fn scalar(result: &QueryResult) -> f64 {
    result.rows[0][0].as_f64().unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdb_datagen::Scale;

    #[test]
    fn engines_for_both_modes_build_and_ingest() {
        let ds = mdb_datagen::ep(3, Scale::tiny()).unwrap();
        let mut v2 = build_engine(&ds, true, 5.0);
        let mut v1 = build_engine(&ds, false, 5.0);
        assert!(v1.catalog().groups.len() > v2.catalog().groups.len());
        ingest_engine(&mut v2, &ds, 200);
        ingest_engine(&mut v1, &ds, 200);
        // MMGC beats MMC on the correlated data set.
        assert!(
            v2.storage_bytes() < v1.storage_bytes(),
            "{} vs {}",
            v2.storage_bytes(),
            v1.storage_bytes()
        );
        // And both views answer the same COUNT.
        let c2 = scalar(&v2.sql("SELECT COUNT_S(*) FROM Segment").unwrap());
        let c1 = scalar(&v1.sql("SELECT COUNT_S(*) FROM Segment").unwrap());
        assert_eq!(c1, c2);
    }

    #[test]
    fn batched_and_row_ingestion_agree() {
        let ds = mdb_datagen::ep(3, Scale::tiny()).unwrap();
        let mut by_row = build_engine(&ds, true, 5.0);
        ingest_engine(&mut by_row, &ds, 200);
        let mut by_batch = build_engine(&ds, true, 5.0);
        ingest_engine_batched(&mut by_batch, &ds, 200, 64);
        assert_eq!(by_row.segments().unwrap(), by_batch.segments().unwrap());
        let a = scalar(&by_row.sql("SELECT SUM_S(*) FROM Segment").unwrap());
        let b = scalar(&by_batch.sql("SELECT SUM_S(*) FROM Segment").unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn baselines_ingest_the_same_points() {
        let ds = mdb_datagen::ep(3, Scale::tiny()).unwrap();
        let expected = ds.count_data_points(100);
        for mut store in baseline_stores() {
            ingest_baseline(store.as_mut(), &ds, 100);
            let acc = store.aggregate(None, i64::MIN, i64::MAX).unwrap();
            assert_eq!(acc.count, expected, "{}", store.name());
        }
    }

    #[test]
    fn m_agg_buckets_are_plausible() {
        let ds = mdb_datagen::ep(3, Scale::tiny()).unwrap();
        let mut store = mdb_baselines::InfluxLike::new();
        ingest_baseline(&mut store, &ds, 200);
        let level = ds.dimensions.resolve_level("Type").unwrap();
        let buckets = baseline_m_agg(&store, &ds, level, i64::MIN, i64::MAX);
        // 2 types × 1 month.
        assert_eq!(buckets, 2);
    }

    #[test]
    fn formatting_helpers() {
        assert!(fmt_bytes(2048).contains("KiB"));
        assert!(fmt_bytes(4 << 20).contains("MiB"));
        assert!(fmt_ms(Duration::from_millis(5)).starts_with("5.0"));
        assert!(fmt_rate(2_000_000, Duration::from_secs(1)).starts_with("2.00"));
    }
}

//! Fixed-width bit-packing of unsigned integers (Parquet-style): the encoder
//! picks the narrowest width that fits the maximum value, so dictionary codes
//! and small enumerations pack into a few bits each.

use crate::bits::{BitReader, BitWriter};
use crate::varint;

/// Packs `values` as: varint count, width byte, then `count × width` bits.
pub fn encode(values: &[u64]) -> Vec<u8> {
    let width = values.iter().copied().max().map_or(0, bits_needed);
    let mut out = Vec::with_capacity(2 + values.len() * width as usize / 8);
    varint::write_u64(&mut out, values.len() as u64);
    out.push(width);
    if width == 0 {
        return out;
    }
    let mut writer = BitWriter::with_capacity(values.len() * width as usize / 8 + 1);
    for &v in values {
        writer.write_bits(v, width);
    }
    out.extend_from_slice(&writer.finish());
    out
}

/// Decodes a buffer produced by [`encode`]; `None` on malformed input.
pub fn decode(input: &[u8]) -> Option<Vec<u64>> {
    let mut slice = input;
    let count = varint::read_u64(&mut slice)? as usize;
    let (&width, rest) = slice.split_first()?;
    if width > 64 {
        return None;
    }
    if width == 0 {
        return Some(vec![0; count]);
    }
    let mut reader = BitReader::new(rest);
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        out.push(reader.read_bits(width)?);
    }
    Some(out)
}

/// The number of bits required to represent `value`.
pub fn bits_needed(value: u64) -> u8 {
    (64 - value.leading_zeros()) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[u64]) -> Vec<u64> {
        decode(&encode(values)).unwrap()
    }

    #[test]
    fn zeros_pack_to_header_only() {
        let values = vec![0u64; 1000];
        let buf = encode(&values);
        assert!(buf.len() <= 3, "got {}", buf.len());
        assert_eq!(decode(&buf).unwrap(), values);
    }

    #[test]
    fn small_codes_use_few_bits() {
        let values: Vec<u64> = (0..1000).map(|i| i % 4).collect();
        let buf = encode(&values);
        // 2 bits per value + header.
        assert!(buf.len() <= 1000 / 4 + 4, "got {}", buf.len());
        assert_eq!(decode(&buf).unwrap(), values);
    }

    #[test]
    fn width_is_max_driven() {
        assert_eq!(bits_needed(0), 0);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
        assert_eq!(bits_needed(u64::MAX), 64);
    }

    #[test]
    fn empty_input() {
        assert_eq!(round_trip(&[]), Vec::<u64>::new());
    }

    #[test]
    fn max_width_values() {
        let values = vec![u64::MAX, 0, u64::MAX / 2];
        assert_eq!(round_trip(&values), values);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(decode(&[]).is_none());
        // Promises 10 values of width 8 but supplies none.
        assert!(decode(&[10, 8]).is_none());
        // Width > 64 is invalid.
        assert!(decode(&[1, 65, 0xFF]).is_none());
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_values_round_trip(values in proptest::collection::vec(proptest::num::u64::ANY, 0..300)) {
            proptest::prop_assert_eq!(round_trip(&values), values);
        }

        #[test]
        fn bounded_values_round_trip(values in proptest::collection::vec(0u64..1000, 0..300)) {
            proptest::prop_assert_eq!(round_trip(&values), values);
        }
    }
}

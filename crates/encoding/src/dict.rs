//! String dictionary encoding.
//!
//! Denormalized dimension members repeat on every data point in the baseline
//! formats (Section 7.1 stores the dimensions with the data for ORC, Parquet,
//! Cassandra and InfluxDB); a dictionary plus bit-packed codes is how the
//! columnar formats make that repetition nearly free.

use std::collections::HashMap;

use crate::{bitpack, varint};

/// Builds a dictionary incrementally and records the code of every appended
/// value.
#[derive(Debug, Default, Clone)]
pub struct DictEncoder {
    values: Vec<String>,
    index: HashMap<String, u32>,
    codes: Vec<u64>,
}

impl DictEncoder {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one value, interning it if new, and returns its code.
    pub fn push(&mut self, value: &str) -> u32 {
        let code = match self.index.get(value) {
            Some(&c) => c,
            None => {
                let c = self.values.len() as u32;
                self.values.push(value.to_string());
                self.index.insert(value.to_string(), c);
                c
            }
        };
        self.codes.push(u64::from(code));
        code
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.values.len()
    }

    /// Number of appended values.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Serializes as: varint distinct-count, then length-prefixed strings,
    /// then bit-packed codes.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        varint::write_u64(&mut out, self.values.len() as u64);
        for v in &self.values {
            varint::write_u64(&mut out, v.len() as u64);
            out.extend_from_slice(v.as_bytes());
        }
        out.extend_from_slice(&bitpack::encode(&self.codes));
        out
    }
}

/// Decodes a buffer produced by [`DictEncoder::finish`] back into the value
/// sequence; `None` on malformed input.
pub fn decode(input: &[u8]) -> Option<Vec<String>> {
    let mut slice = input;
    let distinct = varint::read_u64(&mut slice)? as usize;
    if distinct > (1 << 24) {
        return None;
    }
    let mut dictionary = Vec::with_capacity(distinct);
    for _ in 0..distinct {
        let len = varint::read_u64(&mut slice)? as usize;
        if len > slice.len() {
            return None;
        }
        let (s, rest) = slice.split_at(len);
        dictionary.push(String::from_utf8(s.to_vec()).ok()?);
        slice = rest;
    }
    let codes = bitpack::decode(slice)?;
    codes
        .into_iter()
        .map(|c| dictionary.get(c as usize).cloned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_members_compress_to_bits() {
        let mut enc = DictEncoder::new();
        for i in 0..10_000 {
            enc.push(if i % 2 == 0 { "Aalborg" } else { "Farsø" });
        }
        assert_eq!(enc.distinct(), 2);
        let buf = enc.finish();
        // 2 strings + 10000 × 1 bit ≈ 1.3 KB.
        assert!(buf.len() < 1_500, "got {}", buf.len());
        let decoded = decode(&buf).unwrap();
        assert_eq!(decoded.len(), 10_000);
        assert_eq!(decoded[0], "Aalborg");
        assert_eq!(decoded[1], "Farsø");
    }

    #[test]
    fn single_distinct_value_needs_zero_bits_per_code() {
        let mut enc = DictEncoder::new();
        for _ in 0..1_000 {
            enc.push("Denmark");
        }
        let buf = enc.finish();
        assert!(buf.len() < 32, "got {}", buf.len());
        assert_eq!(decode(&buf).unwrap().len(), 1_000);
    }

    #[test]
    fn empty_dictionary() {
        let buf = DictEncoder::new().finish();
        assert_eq!(decode(&buf).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn codes_are_stable_per_value() {
        let mut enc = DictEncoder::new();
        let a = enc.push("x");
        let b = enc.push("y");
        let a2 = enc.push("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn unicode_values_round_trip() {
        let mut enc = DictEncoder::new();
        for v in ["Farsø", "Århus", "København", "Farsø"] {
            enc.push(v);
        }
        let decoded = decode(&enc.finish()).unwrap();
        assert_eq!(decoded, vec!["Farsø", "Århus", "København", "Farsø"]);
    }

    #[test]
    fn corrupt_input_rejected() {
        assert!(decode(&[]).is_none());
        let mut enc = DictEncoder::new();
        enc.push("abc");
        let buf = enc.finish();
        assert!(decode(&buf[..buf.len() - 1]).is_none());
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_sequences_round_trip(values in proptest::collection::vec("[a-z]{0,12}", 0..200)) {
            let mut enc = DictEncoder::new();
            for v in &values {
                enc.push(v);
            }
            let decoded = decode(&enc.finish()).unwrap();
            proptest::prop_assert_eq!(decoded, values);
        }
    }
}

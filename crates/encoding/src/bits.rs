//! MSB-first bit streams.
//!
//! [`BitWriter`] and [`BitReader`] are the substrate for the Gorilla-style
//! XOR codec ([`crate::xor`]) and the bit-packed integer codec
//! ([`crate::bitpack`]). Bits are written most-significant-first within each
//! byte, matching the layout in the Gorilla paper.

/// Appends bits to a growable byte buffer, most significant bit first.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in `current`.
    used: u8,
    current: u8,
}

impl BitWriter {
    /// A new, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer that re-fills an existing buffer's allocation.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bytes),
            used: 0,
            current: 0,
        }
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.current = (self.current << 1) | u8::from(bit);
        self.used += 1;
        if self.used == 8 {
            self.bytes.push(self.current);
            self.current = 0;
            self.used = 0;
        }
    }

    /// Writes the `count` least significant bits of `value`,
    /// most-significant-first. `count` must be ≤ 64.
    #[inline]
    pub fn write_bits(&mut self, value: u64, count: u8) {
        debug_assert!(count <= 64);
        let mut remaining = count;
        while remaining > 0 {
            // take ≤ 8, so the shift below fits in u16 arithmetic.
            let take = (8 - self.used).min(remaining);
            let shift = remaining - take;
            let chunk = ((value >> shift) as u8) & (((1u16 << take) - 1) as u8);
            // u16 arithmetic: take can be 8, which would overflow `u8 << 8`
            // (current is always 0 in that case, but the shift still panics).
            self.current = (((u16::from(self.current)) << take) as u8) | chunk;
            self.used += take;
            if self.used == 8 {
                self.bytes.push(self.current);
                self.current = 0;
                self.used = 0;
            }
            remaining -= take;
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.used as usize
    }

    /// Finishes the stream, zero-padding the final byte, and returns the
    /// bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.used > 0 {
            self.current <<= 8 - self.used;
            self.bytes.push(self.current);
        }
        self.bytes
    }
}

/// Reads bits from a byte slice, most significant bit first.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads one bit; `None` at end of input.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = *self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `count` bits (≤ 64) into the low bits of a `u64`.
    #[inline]
    pub fn read_bits(&mut self, count: u8) -> Option<u64> {
        debug_assert!(count <= 64);
        if self.pos + count as usize > self.bytes.len() * 8 {
            return None;
        }
        let mut out = 0u64;
        let mut remaining = count;
        while remaining > 0 {
            let byte = self.bytes[self.pos / 8];
            let offset = (self.pos % 8) as u8;
            let available = 8 - offset;
            let take = available.min(remaining);
            let chunk = (byte >> (available - take)) & ((1u16 << take) - 1) as u8;
            out = (out << take) | u64::from(chunk);
            self.pos += take as usize;
            remaining -= take;
        }
        Some(out)
    }

    /// Number of bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Remaining unread bits (including any zero padding in the final byte).
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [
            true, false, true, true, false, false, true, false, true, true,
        ];
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn multi_bit_values_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(0x3FF, 10);
        w.write_bits(u64::MAX, 64);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(32), Some(0xDEADBEEF));
        assert_eq!(r.read_bits(10), Some(0x3FF));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    fn zero_width_reads_and_writes_are_noops() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        w.write_bits(0b1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0), Some(0));
        assert_eq!(r.read_bit(), Some(true));
    }

    #[test]
    fn reading_past_end_returns_none() {
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0xAB));
        assert_eq!(r.read_bits(1), None);
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn bit_len_tracks_written_bits() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 13);
    }

    #[test]
    fn final_byte_is_zero_padded() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1100_0000]);
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_values_round_trip(values in proptest::collection::vec((0u64..=u64::MAX, 1u8..=64), 0..200)) {
            let mut w = BitWriter::new();
            for &(v, c) in &values {
                let masked = if c == 64 { v } else { v & ((1u64 << c) - 1) };
                w.write_bits(masked, c);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &(v, c) in &values {
                let masked = if c == 64 { v } else { v & ((1u64 << c) - 1) };
                proptest::prop_assert_eq!(r.read_bits(c), Some(masked));
            }
        }
    }
}

//! LEB128 variable-length integers and the zigzag signed↔unsigned mapping.

use bytes::{Buf, BufMut};

/// Encodes `value` as LEB128 into `out`.
pub fn write_u64(out: &mut impl BufMut, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

/// Decodes a LEB128 integer from `input`; `None` on truncated or over-long
/// (> 10 byte) input.
pub fn read_u64(input: &mut impl Buf) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        if !input.has_remaining() || shift >= 70 {
            return None;
        }
        let byte = input.get_u8();
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// Maps a signed integer to an unsigned one with small absolute values
/// staying small: 0→0, −1→1, 1→2, −2→3, …
#[inline]
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Encodes a signed integer with zigzag + LEB128.
pub fn write_i64(out: &mut impl BufMut, value: i64) {
    write_u64(out, zigzag(value));
}

/// Decodes a zigzag + LEB128 signed integer.
pub fn read_i64(input: &mut impl Buf) -> Option<i64> {
    read_u64(input).map(unzigzag)
}

/// The number of bytes [`write_u64`] emits for `value`.
pub fn encoded_len_u64(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_u64(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        assert_eq!(buf.len(), encoded_len_u64(v));
        read_u64(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn small_values_use_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), 1);
            assert_eq!(round_trip_u64(v), v);
        }
    }

    #[test]
    fn boundary_values_round_trip() {
        for v in [127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            assert_eq!(round_trip_u64(v), v);
        }
    }

    #[test]
    fn zigzag_interleaves_signs() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
    }

    #[test]
    fn truncated_input_returns_none() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        assert_eq!(read_u64(&mut buf.as_slice()), None);
        assert_eq!(read_u64(&mut [].as_slice()), None);
    }

    #[test]
    fn overlong_input_rejected() {
        let buf = [0x80u8; 11];
        assert_eq!(read_u64(&mut buf.as_slice()), None);
    }

    #[test]
    fn signed_round_trip() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            1_000_000,
            -1_000_000,
            i64::MAX,
            i64::MIN,
        ] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            assert_eq!(read_i64(&mut buf.as_slice()), Some(v));
        }
    }

    proptest::proptest! {
        #[test]
        fn u64_round_trips(v in proptest::num::u64::ANY) {
            proptest::prop_assert_eq!(round_trip_u64(v), v);
        }

        #[test]
        fn i64_round_trips(v in proptest::num::i64::ANY) {
            proptest::prop_assert_eq!(unzigzag(zigzag(v)), v);
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            proptest::prop_assert_eq!(read_i64(&mut buf.as_slice()), Some(v));
        }

        #[test]
        fn sequences_round_trip(values in proptest::collection::vec(proptest::num::i64::ANY, 0..100)) {
            let mut buf = Vec::new();
            for &v in &values {
                write_i64(&mut buf, v);
            }
            let mut slice = buf.as_slice();
            for &v in &values {
                proptest::prop_assert_eq!(read_i64(&mut slice), Some(v));
            }
            proptest::prop_assert!(slice.is_empty());
        }
    }
}

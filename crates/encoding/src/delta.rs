//! Delta and delta-of-delta integer compression.
//!
//! Regular time series have constant deltas, so delta-of-delta encodes their
//! timestamps to almost nothing — the property that makes the Gorilla and
//! InfluxDB storage engines compact (paper references \[28\] and Section 7.1)
//! and that the Parquet-like baseline uses for its timestamp column.

use bytes::Buf;

use crate::varint;

/// Encodes `values` as: varint count, zigzag first value, zigzag first delta,
/// then zigzag delta-of-deltas.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() + 8);
    varint::write_u64(&mut out, values.len() as u64);
    if values.is_empty() {
        return out;
    }
    varint::write_i64(&mut out, values[0]);
    if values.len() == 1 {
        return out;
    }
    let first_delta = values[1].wrapping_sub(values[0]);
    varint::write_i64(&mut out, first_delta);
    let mut prev = values[1];
    let mut prev_delta = first_delta;
    for &v in &values[2..] {
        let delta = v.wrapping_sub(prev);
        varint::write_i64(&mut out, delta.wrapping_sub(prev_delta));
        prev = v;
        prev_delta = delta;
    }
    out
}

/// Decodes a buffer produced by [`encode`]; `None` on malformed input.
pub fn decode(input: &mut impl Buf) -> Option<Vec<i64>> {
    let count = varint::read_u64(input)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    if count == 0 {
        return Some(out);
    }
    let first = varint::read_i64(input)?;
    out.push(first);
    if count == 1 {
        return Some(out);
    }
    let mut delta = varint::read_i64(input)?;
    let mut prev = first.wrapping_add(delta);
    out.push(prev);
    for _ in 2..count {
        let dod = varint::read_i64(input)?;
        delta = delta.wrapping_add(dod);
        prev = prev.wrapping_add(delta);
        out.push(prev);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[i64]) -> Vec<i64> {
        let buf = encode(values);
        decode(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(round_trip(&[]), Vec::<i64>::new());
        assert_eq!(round_trip(&[42]), vec![42]);
        assert_eq!(round_trip(&[-7, -7]), vec![-7, -7]);
    }

    #[test]
    fn regular_timestamps_compress_to_two_bytes_per_run() {
        // A regular series with SI = 60000 (the EP data set) has dod = 0.
        let ts: Vec<i64> = (0..1000).map(|i| 1_460_442_200_000 + i * 60_000).collect();
        let buf = encode(&ts);
        // count + first + first delta + 998 zero dods (1 byte each).
        assert!(buf.len() < 1_020, "got {}", buf.len());
        assert_eq!(decode(&mut buf.as_slice()).unwrap(), ts);
    }

    #[test]
    fn irregular_series_round_trips() {
        let ts = vec![100, 200, 300, 900, 1_000, 1_100, 5_000_000, 5_000_001];
        assert_eq!(round_trip(&ts), ts);
    }

    #[test]
    fn truncated_buffer_returns_none() {
        let ts = vec![1, 2, 3, 4, 5];
        let buf = encode(&ts);
        for cut in 1..buf.len() {
            // Some prefixes decode fewer elements than promised → None.
            let got = decode(&mut buf[..cut].as_ref());
            assert!(got.is_none(), "cut at {cut} decoded {:?}", got);
        }
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_values_round_trip(values in proptest::collection::vec(-1_000_000_000_000i64..1_000_000_000_000, 0..300)) {
            proptest::prop_assert_eq!(round_trip(&values), values);
        }

        #[test]
        fn extreme_values_round_trip(values in proptest::collection::vec(proptest::num::i64::ANY, 0..50)) {
            proptest::prop_assert_eq!(round_trip(&values), values);
        }
    }
}

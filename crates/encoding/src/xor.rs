//! Gorilla-style XOR compression for 32-bit floats.
//!
//! This is the value codec of Facebook's Gorilla TSDB (reference \[28\] of
//! the paper) adapted to the `f32` values of the storage schema: each value
//! is XORed with the previous value in the stream; a zero XOR costs one bit,
//! and non-zero XORs reuse the previous leading/trailing-zero window when
//! possible. The MMGC extension of Section 5.2 stores the values of a group
//! *time-ordered per timestamp block* in one such stream, so correlated
//! series produce small deltas against the immediately preceding value.

use crate::bits::{BitReader, BitWriter};

const LEADING_BITS: u8 = 5;
const LENGTH_BITS: u8 = 5; // stores (significant_bits - 1) ∈ [0, 31]

/// Streaming XOR encoder.
#[derive(Debug, Clone)]
pub struct XorEncoder {
    writer: BitWriter,
    prev: u32,
    leading: u8,
    trailing: u8,
    count: usize,
}

impl Default for XorEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl XorEncoder {
    /// A new encoder; the first pushed value is stored verbatim.
    pub fn new() -> Self {
        Self {
            writer: BitWriter::new(),
            prev: 0,
            leading: u8::MAX,
            trailing: 0,
            count: 0,
        }
    }

    /// Appends one value to the stream.
    pub fn push(&mut self, value: f32) {
        let bits = value.to_bits();
        if self.count == 0 {
            self.writer.write_bits(u64::from(bits), 32);
            self.prev = bits;
            self.count = 1;
            return;
        }
        let xor = bits ^ self.prev;
        if xor == 0 {
            self.writer.write_bit(false);
        } else {
            self.writer.write_bit(true);
            let leading = (xor.leading_zeros() as u8).min(31);
            let trailing = xor.trailing_zeros() as u8;
            if self.leading != u8::MAX && leading >= self.leading && trailing >= self.trailing {
                // Fits in the previous window: control bit 0 + meaningful bits.
                self.writer.write_bit(false);
                let significant = 32 - self.leading - self.trailing;
                self.writer
                    .write_bits(u64::from(xor >> self.trailing), significant);
            } else {
                // New window: control bit 1 + leading count + length + bits.
                self.writer.write_bit(true);
                let significant = 32 - leading - trailing;
                self.writer.write_bits(u64::from(leading), LEADING_BITS);
                self.writer
                    .write_bits(u64::from(significant - 1), LENGTH_BITS);
                self.writer
                    .write_bits(u64::from(xor >> trailing), significant);
                self.leading = leading;
                self.trailing = trailing;
            }
        }
        self.prev = bits;
        self.count += 1;
    }

    /// Number of values pushed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The size of the stream so far, in bits (used for model selection).
    pub fn bit_len(&self) -> usize {
        self.writer.bit_len()
    }

    /// The size of the stream so far, rounded up to whole bytes.
    pub fn byte_len(&self) -> usize {
        self.writer.bit_len().div_ceil(8)
    }

    /// Finishes the stream and returns its bytes.
    pub fn finish(self) -> Vec<u8> {
        self.writer.finish()
    }
}

/// Streaming XOR decoder. The number of encoded values is not part of the
/// stream and must be supplied by the caller (segments know their length).
#[derive(Debug, Clone)]
pub struct XorDecoder<'a> {
    reader: BitReader<'a>,
    prev: u32,
    leading: u8,
    trailing: u8,
    emitted: usize,
}

impl<'a> XorDecoder<'a> {
    /// A decoder over an encoded stream.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            reader: BitReader::new(bytes),
            prev: 0,
            leading: 0,
            trailing: 0,
            emitted: 0,
        }
    }

    /// Decodes the next value; `None` on malformed or exhausted input.
    pub fn next_value(&mut self) -> Option<f32> {
        if self.emitted == 0 {
            let bits = self.reader.read_bits(32)? as u32;
            self.prev = bits;
            self.emitted = 1;
            return Some(f32::from_bits(bits));
        }
        let bits = if !self.reader.read_bit()? {
            self.prev
        } else {
            if self.reader.read_bit()? {
                let leading = self.reader.read_bits(LEADING_BITS)? as u8;
                let significant = self.reader.read_bits(LENGTH_BITS)? as u8 + 1;
                self.leading = leading;
                self.trailing = 32 - leading - significant;
                let xor = (self.reader.read_bits(significant)? as u32) << self.trailing;
                self.prev ^ xor
            } else {
                let significant = 32 - self.leading - self.trailing;
                let xor = (self.reader.read_bits(significant)? as u32) << self.trailing;
                self.prev ^ xor
            }
        };
        self.prev = bits;
        self.emitted += 1;
        Some(f32::from_bits(bits))
    }
}

/// Decodes exactly `count` values.
pub fn decode_all(bytes: &[u8], count: usize) -> Option<Vec<f32>> {
    let mut decoder = XorDecoder::new(bytes);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decoder.next_value()?);
    }
    Some(out)
}

/// Encodes a slice of values.
pub fn encode_all(values: &[f32]) -> Vec<u8> {
    let mut enc = XorEncoder::new();
    for &v in values {
        enc.push(v);
    }
    enc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[f32]) {
        let bytes = encode_all(values);
        let decoded = decode_all(&bytes, values.len()).unwrap();
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits(), "lossless mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn constant_values_cost_one_bit_each() {
        let values = vec![42.5f32; 1000];
        let bytes = encode_all(&values);
        // 32 bits for the first value + 999 single zero bits.
        assert!(bytes.len() <= 4 + 999 / 8 + 1, "got {}", bytes.len());
        round_trip(&values);
    }

    #[test]
    fn similar_values_compress_well() {
        let values: Vec<f32> = (0..1000).map(|i| 180.0 + (i as f32) * 0.001).collect();
        let bytes = encode_all(&values);
        assert!(
            bytes.len() < values.len() * 4,
            "no smaller than raw: {}",
            bytes.len()
        );
        round_trip(&values);
    }

    #[test]
    fn special_values_round_trip_bit_exactly() {
        round_trip(&[
            0.0,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN,
            f32::MAX,
            f32::EPSILON,
        ]);
        // NaN payloads must survive too.
        let values = [f32::NAN, f32::from_bits(0x7FC0_0001), 1.0];
        let bytes = encode_all(&values);
        let decoded = decode_all(&bytes, 3).unwrap();
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_and_single() {
        round_trip(&[]);
        round_trip(&[std::f32::consts::PI]);
    }

    #[test]
    fn truncated_stream_returns_none() {
        let values: Vec<f32> = (0..10).map(|i| i as f32 * 1.7).collect();
        let bytes = encode_all(&values);
        assert!(decode_all(&bytes[..2], 10).is_none());
    }

    #[test]
    fn grouped_correlated_blocks_beat_per_series_streams() {
        // Three correlated series interleaved per timestamp (the MMGC layout
        // of Figure 10) should compress better than concatenating them
        // (values at the same timestamp differ less than values 50 apart).
        let base: Vec<f32> = (0..50)
            .map(|i| (i as f32 * 0.37).sin() * 50.0 + 180.0)
            .collect();
        let mut interleaved = Vec::new();
        let mut concatenated = [Vec::new(), Vec::new(), Vec::new()];
        for (i, &v) in base.iter().enumerate() {
            for (s, column) in concatenated.iter_mut().enumerate() {
                let value = v + s as f32 * 0.01 + (i % 3) as f32 * 0.001;
                interleaved.push(value);
                column.push(value);
            }
        }
        let grouped = encode_all(&interleaved).len();
        let separate: usize = concatenated.iter().map(|c| encode_all(c).len()).sum();
        assert!(
            grouped <= separate + 8,
            "grouped {grouped} vs separate {separate}"
        );
        round_trip(&interleaved);
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_floats_round_trip(values in proptest::collection::vec(proptest::num::f32::ANY, 0..200)) {
            let bytes = encode_all(&values);
            let decoded = decode_all(&bytes, values.len()).unwrap();
            for (a, b) in values.iter().zip(&decoded) {
                proptest::prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

//! Bit- and byte-level codecs shared by the models, the storage engine, and
//! the baseline formats.
//!
//! Everything here is implemented from scratch: the approved dependency list
//! contains no compression or encoding crates, and the paper's systems rely
//! on exactly these families of codecs —
//!
//! * [`bits`] — MSB-first bit streams, the substrate for Gorilla-style
//!   encodings (Pelkonen et al., reference \[28\] of the paper).
//! * [`varint`] — LEB128 variable-length integers and zigzag signed mapping.
//! * [`delta`] — delta and delta-of-delta timestamp compression as used by
//!   the Gorilla/InfluxDB storage engines.
//! * [`xor`] — XOR float compression (the value half of Gorilla), reused by
//!   both the MMGC Gorilla model and the InfluxDB-like baseline.
//! * [`rle`] — run-length encoding with literal runs (ORC RLE-style).
//! * [`bitpack`] — fixed-width bit-packing (Parquet-style).
//! * [`lzss`] — an LZ77/LZSS general-purpose byte compressor with hash-chain
//!   match finding, standing in for the LZ4/Snappy block compression of
//!   Cassandra/Parquet/ORC.
//! * [`dict`] — string dictionary encoding for denormalized dimension
//!   columns.

pub mod bitpack;
pub mod bits;
pub mod delta;
pub mod dict;
pub mod lzss;
pub mod rle;
pub mod varint;
pub mod xor;

pub use bits::{BitReader, BitWriter};

//! LZSS: an LZ77-family general-purpose byte compressor with hash-chain
//! match finding.
//!
//! The baseline formats need block compression in the role LZ4/Snappy play
//! for Cassandra/Parquet/ORC, and no compression crate is on the approved
//! dependency list, so this implements the classic scheme directly: the
//! stream alternates literal runs and back-references, framed as
//!
//! ```text
//! varint(uncompressed_len)
//! repeat until uncompressed_len bytes produced:
//!     varint(literal_len) literal_bytes…
//!     if more output remains: varint(offset ≥ 1) varint(match_len − MIN_MATCH)
//! ```
//!
//! Matches may overlap their own output (`offset < match_len`), which encodes
//! runs. Compression is greedy with a bounded hash-chain search.

use bytes::Buf;

use crate::varint;

/// Shortest back-reference worth encoding (offset+len headers cost ~2 bytes).
const MIN_MATCH: usize = 4;
/// Longest match emitted; bounds decoder work per token.
const MAX_MATCH: usize = 1 << 16;
/// Sliding window: how far back references may reach.
const WINDOW: usize = 1 << 15;
/// Hash-chain positions examined per literal before giving up.
const MAX_CHAIN: usize = 32;

const HASH_BITS: u32 = 15;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input`. The output of incompressible input is a single
/// literal run, `input.len()` plus two varint headers.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    varint::write_u64(&mut out, input.len() as u64);
    if input.is_empty() {
        return out;
    }

    let mut head = vec![u32::MAX; 1 << HASH_BITS];
    let mut prev = vec![u32::MAX; input.len()];

    let mut pos = 0;
    let mut literal_start = 0;
    while pos < input.len() {
        let (match_pos, match_len) = if pos + MIN_MATCH <= input.len() {
            find_match(input, pos, &head, &prev)
        } else {
            (0, 0)
        };

        if match_len >= MIN_MATCH {
            // Emit pending literals, then the reference.
            varint::write_u64(&mut out, (pos - literal_start) as u64);
            out.extend_from_slice(&input[literal_start..pos]);
            varint::write_u64(&mut out, (pos - match_pos) as u64);
            varint::write_u64(&mut out, (match_len - MIN_MATCH) as u64);
            // Index every position covered by the match so later matches can
            // reference into it, then jump past the match.
            let match_end = pos + match_len;
            let indexable_end = match_end.min(input.len().saturating_sub(MIN_MATCH - 1));
            while pos < indexable_end {
                insert(input, pos, &mut head, &mut prev);
                pos += 1;
            }
            pos = match_end;
            literal_start = pos;
        } else {
            if pos + MIN_MATCH <= input.len() {
                insert(input, pos, &mut head, &mut prev);
            }
            pos += 1;
        }
    }
    // Trailing literals.
    varint::write_u64(&mut out, (pos - literal_start) as u64);
    out.extend_from_slice(&input[literal_start..pos]);
    out
}

#[inline]
fn insert(input: &[u8], pos: usize, head: &mut [u32], prev: &mut [u32]) {
    let h = hash4(&input[pos..]);
    prev[pos] = head[h];
    head[h] = pos as u32;
}

fn find_match(input: &[u8], pos: usize, head: &[u32], prev: &[u32]) -> (usize, usize) {
    let h = hash4(&input[pos..]);
    let mut candidate = head[h];
    let mut best_len = 0;
    let mut best_pos = 0;
    let limit = input.len();
    let max_len = (limit - pos).min(MAX_MATCH);
    let mut chain = 0;
    while candidate != u32::MAX && chain < MAX_CHAIN {
        let c = candidate as usize;
        if pos - c > WINDOW {
            break;
        }
        // Cheap rejection: the byte that would extend the best match.
        if best_len == 0 || input.get(c + best_len) == input.get(pos + best_len) {
            let mut len = 0;
            while len < max_len && input[c + len] == input[pos + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_pos = c;
                if len >= max_len {
                    break;
                }
            }
        }
        candidate = prev[c];
        chain += 1;
    }
    (best_pos, best_len)
}

/// Decompresses a buffer produced by [`compress`]; `None` on malformed input.
pub fn decompress(input: &[u8]) -> Option<Vec<u8>> {
    let mut slice = input;
    let total = varint::read_u64(&mut slice)? as usize;
    // Guard against absurd length claims on corrupt data.
    if total > (1 << 32) {
        return None;
    }
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let literal_len = varint::read_u64(&mut slice)? as usize;
        if literal_len > slice.remaining() || out.len() + literal_len > total {
            return None;
        }
        out.extend_from_slice(&slice[..literal_len]);
        slice = &slice[literal_len..];
        if out.len() == total {
            break;
        }
        let offset = varint::read_u64(&mut slice)? as usize;
        let match_len = varint::read_u64(&mut slice)? as usize + MIN_MATCH;
        if offset == 0 || offset > out.len() || out.len() + match_len > total {
            return None;
        }
        // Byte-wise copy: matches may overlap their own output.
        let start = out.len() - offset;
        for i in 0..match_len {
            let b = out[start + i];
            out.push(b);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn round_trip(input: &[u8]) -> usize {
        let compressed = compress(input);
        let decompressed = decompress(&compressed).unwrap();
        assert_eq!(
            decompressed,
            input,
            "round trip failed for {} bytes",
            input.len()
        );
        compressed.len()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
        round_trip(b"abcd");
    }

    #[test]
    fn repeated_bytes_compress_via_overlap() {
        let input = vec![7u8; 100_000];
        let size = round_trip(&input);
        assert!(size < 64, "run of 100k bytes compressed to {size}");
    }

    #[test]
    fn repeated_phrases_compress() {
        let input: Vec<u8> = b"timestamp,value,entity,park,country;".repeat(1000);
        let size = round_trip(&input);
        assert!(size < input.len() / 10, "got {size} of {}", input.len());
    }

    #[test]
    fn random_data_stays_close_to_raw() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let input: Vec<u8> = (0..10_000).map(|_| rng.gen()).collect();
        let size = round_trip(&input);
        assert!(
            size <= input.len() + input.len() / 64 + 16,
            "expansion too large: {size}"
        );
    }

    #[test]
    fn long_range_matches_within_window() {
        let mut input = Vec::new();
        let phrase: Vec<u8> = (0..255u8).collect();
        input.extend_from_slice(&phrase);
        input.extend(std::iter::repeat_n(0u8, WINDOW - 512));
        input.extend_from_slice(&phrase);
        round_trip(&input);
    }

    #[test]
    fn corrupt_input_rejected() {
        let compressed = compress(b"hello world hello world hello world");
        assert!(decompress(&compressed[..compressed.len() / 2]).is_none());
        assert!(decompress(&[]).is_none());
        // Claims 100 output bytes but provides nothing.
        let mut bogus = Vec::new();
        varint::write_u64(&mut bogus, 100);
        assert!(decompress(&bogus).is_none());
        // Back-reference beyond the produced output.
        let mut bogus = Vec::new();
        varint::write_u64(&mut bogus, 10);
        varint::write_u64(&mut bogus, 1); // one literal
        bogus.push(b'x');
        varint::write_u64(&mut bogus, 5); // offset 5 > produced 1
        varint::write_u64(&mut bogus, 0);
        assert!(decompress(&bogus).is_none());
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_bytes_round_trip(input in proptest::collection::vec(proptest::num::u8::ANY, 0..5000)) {
            round_trip(&input);
        }

        #[test]
        fn structured_bytes_round_trip(
            seed in proptest::num::u64::ANY,
            phrase_len in 1usize..64,
            repeats in 1usize..100,
        ) {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let phrase: Vec<u8> = (0..phrase_len).map(|_| rng.gen_range(0..8u8)).collect();
            let mut input = Vec::new();
            for _ in 0..repeats {
                input.extend_from_slice(&phrase);
                if rng.gen_bool(0.3) {
                    input.push(rng.gen());
                }
            }
            round_trip(&input);
        }
    }
}

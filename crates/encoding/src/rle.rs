//! Run-length encoding with literal runs, in the style of ORC's integer RLE:
//! repeated values become `(run, value)` pairs, and stretches without
//! repetition are stored as literal sequences to avoid per-value headers.

use bytes::Buf;

use crate::varint;

/// Runs shorter than this are folded into literal sequences.
const MIN_RUN: usize = 3;

/// Encodes `values` as a sequence of headers: `header = (len << 1) | is_run`,
/// followed by one zigzag value (run) or `len` zigzag values (literal).
pub fn encode(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() / 2 + 8);
    varint::write_u64(&mut out, values.len() as u64);
    let mut i = 0;
    let mut literal_start = 0;
    while i < values.len() {
        // Measure the run starting at i.
        let mut run = 1;
        while i + run < values.len() && values[i + run] == values[i] {
            run += 1;
        }
        if run >= MIN_RUN {
            flush_literals(&mut out, &values[literal_start..i]);
            varint::write_u64(&mut out, ((run as u64) << 1) | 1);
            varint::write_i64(&mut out, values[i]);
            i += run;
            literal_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, &values[literal_start..]);
    out
}

fn flush_literals(out: &mut Vec<u8>, literals: &[i64]) {
    if literals.is_empty() {
        return;
    }
    varint::write_u64(out, (literals.len() as u64) << 1);
    for &v in literals {
        varint::write_i64(out, v);
    }
}

/// Decodes a buffer produced by [`encode`]; `None` on malformed input.
pub fn decode(input: &mut impl Buf) -> Option<Vec<i64>> {
    let total = varint::read_u64(input)? as usize;
    let mut out = Vec::with_capacity(total.min(1 << 20));
    while out.len() < total {
        let header = varint::read_u64(input)?;
        let len = (header >> 1) as usize;
        if len == 0 || out.len() + len > total {
            return None;
        }
        if header & 1 == 1 {
            let value = varint::read_i64(input)?;
            out.resize(out.len() + len, value);
        } else {
            for _ in 0..len {
                out.push(varint::read_i64(input)?);
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[i64]) -> Vec<i64> {
        let buf = encode(values);
        decode(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn empty_and_short_inputs() {
        assert_eq!(round_trip(&[]), Vec::<i64>::new());
        assert_eq!(round_trip(&[5]), vec![5]);
        assert_eq!(round_trip(&[5, 5]), vec![5, 5]);
    }

    #[test]
    fn long_runs_compress_to_a_few_bytes() {
        let values = vec![-3i64; 10_000];
        let buf = encode(&values);
        assert!(buf.len() < 16, "got {}", buf.len());
        assert_eq!(decode(&mut buf.as_slice()).unwrap(), values);
    }

    #[test]
    fn mixed_runs_and_literals() {
        let values = vec![1, 2, 3, 7, 7, 7, 7, 4, 5, 9, 9, 9, 6];
        assert_eq!(round_trip(&values), values);
    }

    #[test]
    fn runs_of_exactly_min_run() {
        let values = vec![1, 1, 1, 2, 2, 3, 3, 3];
        assert_eq!(round_trip(&values), values);
    }

    #[test]
    fn truncated_input_returns_none() {
        let values = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let buf = encode(&values);
        assert!(decode(&mut buf[..buf.len() - 1].as_ref()).is_none());
    }

    #[test]
    fn length_overflow_rejected() {
        // A header promising more values than the total is malformed.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 2); // total = 2
        varint::write_u64(&mut buf, (5 << 1) | 1); // run of 5
        varint::write_i64(&mut buf, 1);
        assert!(decode(&mut buf.as_slice()).is_none());
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_values_round_trip(values in proptest::collection::vec(-100i64..100, 0..400)) {
            proptest::prop_assert_eq!(round_trip(&values), values);
        }

        #[test]
        fn extreme_values_round_trip(values in proptest::collection::vec(proptest::num::i64::ANY, 0..100)) {
            proptest::prop_assert_eq!(round_trip(&values), values);
        }
    }
}

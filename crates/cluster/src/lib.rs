//! The master/worker runtime (Figure 4, Section 3.1), made elastic.
//!
//! The master partitions time series into groups (done beforehand by
//! `mdb-partitioner`), places each group on `replication_factor` workers —
//! one *primary* plus replicas — and routes every batch of a group to all
//! of its holders. Groups never span nodes for query purposes: each worker
//! answers only for the groups it is primary of, so neither ingestion nor
//! queries shuffle data, which is what produces the near-linear scale-out
//! of Figure 20.
//!
//! Queries follow Algorithm 5's annotations with one refinement for
//! elasticity: every worker computes partial aggregates **per group** (its
//! engine scoped to one gid at a time) and the master merges the collected
//! `(gid, partial)` pairs in global gid order. Because a group's segments
//! are identical on every holder (same batches, same deterministic
//! compression) and the merge order depends only on gids, query results
//! are bit-identical regardless of which holder serves a group — across
//! failovers, group handoffs, and cluster sizes.
//!
//! The master supervises workers rather than trusting them: each worker is
//! an OS thread whose panics are caught and recorded, every channel
//! disconnection observed on the ingest/flush/query paths declares the
//! worker dead and promotes replicas ([`Cluster::health`] reports the
//! resulting state), and membership changes ([`Cluster::add_worker`],
//! [`Cluster::remove_worker`]) drain and ship whole groups between workers
//! with an atomic routing flip.
//!
//! Workers are OS threads connected by **bounded** channels; each owns the
//! full single-node stack (group ingestors → segment store → query engine).
//! Ingestion is batch-oriented end-to-end: the master splits a columnar
//! [`RowBatch`] into per-group batches and ships whole batches, and a worker
//! that falls [`ClusterConfig::ingest_queue_depth`](mdb_query::CommonOptions::ingest_queue_depth)
//! batches behind blocks the master (real backpressure) instead of queueing
//! unboundedly.

mod handoff;
mod health;
mod membership;

pub use health::{ClusterHealth, WorkerHealth, WorkerState};

use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, Sender};
use mdb_compression::{CompressionConfig, CompressionStats, GroupIngestor};
use mdb_models::ModelRegistry;
use mdb_partitioner::assign_replicas;
use mdb_query::engine::PartialAggregates;
use mdb_query::{
    merge_partials, CommonOptions, Query, QueryEngine, QueryResult, ScanPool, SelectItem,
};
use mdb_storage::{
    Catalog, DiskStore, DiskStoreOptions, MemoryStore, SegmentPredicate, SegmentStore,
};
use mdb_types::{
    BlockSketch, Gid, MdbError, Result, RowBatch, SegmentRecord, Tid, TimeLevel, Timestamp, Value,
};

/// Cluster runtime configuration.
///
/// The knobs shared with the embedded engine's `Config` live in the
/// embedded [`CommonOptions`]; `ClusterConfig` derefs to it, so the
/// historical field paths (`config.compression`, `config.storage_dir`,
/// `config.ingest_queue_depth`, …) keep working unchanged. Cluster-specific
/// readings of the shared knobs:
///
/// * `common.query_parallelism` — scan workers *per cluster worker*; the
///   cluster default is `1` (sequential per worker) because the workers
///   already scan concurrently during scatter/gather. Results are
///   bit-identical at every setting.
/// * `common.storage_dir` — when set, every worker persists its segments in
///   an out-of-core [`mdb_storage::DiskStore`] under `<dir>/worker-<i>`,
///   and the master persists its placement in `<dir>/cluster.meta` so a
///   restart serves groups from wherever failovers and handoffs left them.
/// * `common.memory_budget_bytes` — the *total* block-cache budget, split
///   evenly over the workers (each worker's store gets `budget /
///   n_workers`). Each worker's share is fixed when it is spawned: a worker
///   added by [`Cluster::add_worker`] gets `budget / new_slot_count`, while
///   the existing workers keep the share they were spawned with, so the
///   cluster-wide budget can transiently exceed this total after a grow. A
///   restart re-splits the budget evenly over the grown slot count.
/// * `common.ingest_queue_depth` — maximum commands buffered per worker
///   channel. The master's batched ingestion blocks once a worker falls
///   this many batches behind — real backpressure instead of an unbounded
///   queue.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The knobs shared with the embedded engine (compression, bulk write
    /// size, cache budget, prefetch depth, per-worker scan parallelism,
    /// storage root, queue depth), reachable directly on `ClusterConfig`
    /// through `Deref`.
    pub common: CommonOptions,
    /// How long [`Cluster::health`] waits for a worker's liveness reply
    /// before reporting it as unresponsive. The probe queues behind any
    /// pending ingest batches and in-flight scans/flushes, so a busy worker
    /// can legitimately take a while — which is why a probe *timeout* only
    /// flags the worker as slow ([`WorkerHealth::probe_timed_out`]) and a
    /// worker is declared dead solely on proof (a disconnected channel).
    pub health_probe_timeout: Duration,
    /// Copies kept per group: one primary plus `replication_factor - 1`
    /// replicas, placed on distinct workers by
    /// [`mdb_partitioner::assign_replicas`]. Every holder ingests the same
    /// per-group batches (so its copy is bit-identical), but only the
    /// primary serves queries. At the default of 1 a worker failure loses
    /// its groups (reported by [`Cluster::health`]); at 2+ the master
    /// promotes a replica and ingestion and queries continue unchanged.
    pub replication_factor: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            common: CommonOptions::builder().query_parallelism(1).build(),
            health_probe_timeout: Duration::from_secs(30),
            replication_factor: 1,
        }
    }
}

impl std::ops::Deref for ClusterConfig {
    type Target = CommonOptions;

    fn deref(&self) -> &CommonOptions {
        &self.common
    }
}

impl std::ops::DerefMut for ClusterConfig {
    fn deref_mut(&mut self) -> &mut CommonOptions {
        &mut self.common
    }
}

impl ClusterConfig {
    /// A config with the given compression settings and the default queue
    /// depth.
    pub fn with_compression(compression: CompressionConfig) -> Self {
        let mut config = Self::default();
        config.common.compression = compression;
        config
    }

    /// Builds a cluster config from shared options; the cluster-only knobs
    /// take their defaults.
    pub fn from_common(common: CommonOptions) -> Self {
        Self {
            common,
            ..Self::default()
        }
    }
}

/// A batch routed to one worker: the columns of one group over a run of
/// ticks (rows where the whole group was in a gap are already dropped).
/// The batch is shared between the group's holders, not copied per replica.
#[derive(Debug)]
struct GroupBatch {
    gid: Gid,
    batch: Arc<RowBatch>,
}

/// The groups a scatter command covers, shared across the reply round-trip.
type GidScope = Arc<Vec<Gid>>;

/// A partial-aggregation reply: per-group partials plus the worker-local
/// wall time (used by the scale-out simulation).
type PartialReply = (Vec<(Gid, PartialAggregates)>, Duration);

/// A listing reply: a row-less shape result (for the column names), the
/// per-group rows, and the wall time.
type RowsReply = (QueryResult, Vec<(Gid, QueryResult)>, Duration);

/// A sketch reply: the worker's per-group sketches merged over its primary
/// scope, plus the wall time. One merged sketch suffices — sketch merging
/// is commutative and associative, so the master needs no per-gid ordering
/// to stay deterministic.
type SketchReply = (BlockSketch, Duration);

/// Exported state of one group: its segment runs in the source store's
/// deterministic per-group scan order (run/block boundaries preserved) and
/// the compression counters accumulated on the source, so statistics
/// survive the handoff with the data.
type GroupRuns = (Gid, Vec<Vec<SegmentRecord>>, CompressionStats);

enum Command {
    Ingest(Vec<GroupBatch>),
    Flush(Sender<Result<()>>),
    /// Run the partial-aggregation phase for each group in the scope,
    /// one engine pass per gid.
    QueryPartial(Arc<Query>, GidScope, Sender<Result<PartialReply>>),
    /// Run a listing query per group in the scope.
    QueryRows(Arc<Query>, GidScope, Sender<Result<RowsReply>>),
    /// Merge the store's sketches over the scoped groups — block metadata
    /// only, no segment bodies.
    QuerySketch(Arc<Query>, GidScope, Sender<Result<SketchReply>>),
    /// Compression/storage statistics restricted to the scope, so replicas
    /// and handed-off leftovers are never double counted.
    Stats(GidScope, Sender<Result<(CompressionStats, u64, usize)>>),
    /// Liveness probe; the reply is the heartbeat.
    Health(Sender<()>),
    /// Drain the scoped groups' ingestors into the store, flush it, and
    /// reply with each group's segment runs — the sending half of a handoff.
    Export(Vec<Gid>, Sender<Result<Vec<GroupRuns>>>),
    /// Adopt the shipped groups: build their ingestors and append their
    /// runs to the local store — the receiving half of a handoff.
    Import(Vec<GroupRuns>, Sender<Result<()>>),
    /// Crash injection: stop immediately, processing nothing further.
    Die,
    /// Drain everything and stop, reporting the first drain failure.
    Shutdown(Sender<Result<()>>),
}

/// Status a worker thread publishes for the master (lock-free liveness via
/// the poison flag; counters and deferred errors under a mutex).
#[derive(Default)]
struct WorkerShared {
    status: Mutex<WorkerStatus>,
    /// Set by [`Cluster::crash_worker`]: the worker thread exits at the next
    /// command without processing it, emulating a hard crash.
    poison: AtomicBool,
}

#[derive(Default)]
struct WorkerStatus {
    batches_ingested: u64,
    /// First deferred ingestion error (satellite of Section 3.1's
    /// supervision: kept verbatim, not overwritten by later failures).
    first_error: Option<String>,
    /// Deferred ingestion errors beyond the first.
    deferred_errors: u64,
    /// Panic payload if the worker thread unwound.
    panic: Option<String>,
}

impl WorkerShared {
    fn record_error(&self, message: String) {
        let mut status = self.status.lock().unwrap_or_else(|e| e.into_inner());
        if status.first_error.is_none() {
            status.first_error = Some(message);
        } else {
            status.deferred_errors += 1;
        }
    }

    /// The deferred first error and overflow count, without clearing —
    /// the ingest path reports but leaves clearing to flush.
    fn peek_error(&self) -> Option<(String, u64)> {
        let status = self.status.lock().unwrap_or_else(|e| e.into_inner());
        status
            .first_error
            .clone()
            .map(|msg| (msg, status.deferred_errors))
    }

    /// The deferred first error and overflow count, clearing both.
    fn take_error(&self) -> Option<(String, u64)> {
        let mut status = self.status.lock().unwrap_or_else(|e| e.into_inner());
        let count = std::mem::take(&mut status.deferred_errors);
        status.first_error.take().map(|msg| (msg, count))
    }
}

/// Formats a deferred error with its overflow count for reporting.
fn deferred_message(message: String, extra: u64) -> String {
    if extra > 0 {
        format!("{message} (+{extra} more deferred errors)")
    } else {
        message
    }
}

struct Worker {
    /// `None` once the worker left service (dead, removed, or shut down).
    sender: Option<Sender<Command>>,
    handle: Option<std::thread::JoinHandle<()>>,
    shared: Arc<WorkerShared>,
    state: WorkerState,
    /// Why a non-active worker left service.
    note: Option<String>,
}

/// The master's placement: worker slots plus gid → holder indices, guarded
/// by one lock so routing decisions and membership changes never interleave.
struct Topology {
    workers: Vec<Worker>,
    /// Holders per group, primary first. Contains only
    /// [`WorkerState::Active`] workers; an empty list means the group was
    /// lost (every holder died before it could be handed off).
    holders: HashMap<Gid, Vec<usize>>,
    /// Per worker slot: every gid whose segments may live in that worker's
    /// store — current holds plus everything it *ever* held. Append-only
    /// stores cannot delete, so a handoff leaves the exported segments in
    /// the donor's log; importing the same group again would duplicate
    /// them. Handoff targets are therefore drawn from workers outside this
    /// set, and the set is persisted in the manifest so the guard survives
    /// restarts (the leftover segments do too). A superset of `holders`.
    ever_held: Vec<HashSet<Gid>>,
}

impl Topology {
    /// The gids worker `index` is primary of, sorted.
    fn primary_gids(&self, index: usize) -> Vec<Gid> {
        let mut gids: Vec<Gid> = self
            .holders
            .iter()
            .filter(|(_, holders)| holders.first() == Some(&index))
            .map(|(&gid, _)| gid)
            .collect();
        gids.sort_unstable();
        gids
    }

    /// The gids worker `index` holds any copy of, sorted.
    fn hosted_gids(&self, index: usize) -> Vec<Gid> {
        let mut gids: Vec<Gid> = self
            .holders
            .iter()
            .filter(|(_, holders)| holders.contains(&index))
            .map(|(&gid, _)| gid)
            .collect();
        gids.sort_unstable();
        gids
    }

    /// Groups with no surviving holder, sorted.
    fn lost_gids(&self) -> Vec<Gid> {
        let mut gids: Vec<Gid> = self
            .holders
            .iter()
            .filter(|(_, holders)| holders.is_empty())
            .map(|(&gid, _)| gid)
            .collect();
        gids.sort_unstable();
        gids
    }

    /// Active worker indices.
    fn active(&self) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.state == WorkerState::Active)
            .map(|(i, _)| i)
            .collect()
    }

    /// Declares a worker dead in place: strips it from every holder list
    /// (the next holder becomes primary) and drops the master's sender so
    /// the thread exits once it drains its queue.
    fn mark_dead(&mut self, index: usize, reason: &str) -> bool {
        let worker = &mut self.workers[index];
        if worker.state != WorkerState::Active {
            return false;
        }
        worker.state = WorkerState::Dead;
        worker.note = Some(reason.to_string());
        worker.sender = None;
        for holders in self.holders.values_mut() {
            holders.retain(|&h| h != index);
        }
        true
    }
}

/// A running ModelarDB+ cluster.
pub struct Cluster {
    catalog: Arc<Catalog>,
    registry: Arc<ModelRegistry>,
    config: ClusterConfig,
    topology: RwLock<Topology>,
    /// Per group (in catalog order): the row indexes of its member series,
    /// cached so routing a tick is O(values) instead of O(series²).
    group_row_indices: Vec<Vec<usize>>,
    /// Single-row batch backing [`Cluster::ingest_row`] (a batch of one on
    /// the [`Cluster::ingest_batch`] path), reused across calls so the
    /// compatibility path does not allocate a fresh column set per tick.
    scratch_row: Mutex<RowBatch>,
    /// Group sizes for the zone map's value-bounds closure.
    sizes: HashMap<Gid, usize>,
}

/// An error naming the worker it was observed on (every path that talks to
/// a worker reports the slot index, so operators know where to look).
fn worker_error(index: usize, what: &str) -> MdbError {
    MdbError::Ingestion(format!("worker {index} {what}"))
}

impl Cluster {
    /// Starts `n_workers` workers for the groups in `catalog` with the given
    /// compression settings and default runtime options; see
    /// [`Cluster::start_with`] for the full configuration surface.
    pub fn start(
        catalog: Arc<Catalog>,
        registry: Arc<ModelRegistry>,
        config: CompressionConfig,
        n_workers: usize,
    ) -> Result<Self> {
        Self::start_with(
            catalog,
            registry,
            ClusterConfig::with_compression(config),
            n_workers,
        )
    }

    /// Starts `n_workers` workers for the groups in `catalog`, placing each
    /// group on [`ClusterConfig::replication_factor`] workers (primary
    /// first) with [`mdb_partitioner::assign_replicas`]. Worker command
    /// channels are bounded at
    /// [`ClusterConfig::ingest_queue_depth`](mdb_query::CommonOptions::ingest_queue_depth), so
    /// ingestion blocks (backpressure) instead of queueing unboundedly when
    /// workers lag. On disk-backed clusters a placement manifest written
    /// beside the worker directories is adopted on restart, so groups are
    /// served from wherever earlier failovers and handoffs left them.
    pub fn start_with(
        catalog: Arc<Catalog>,
        registry: Arc<ModelRegistry>,
        config: ClusterConfig,
        n_workers: usize,
    ) -> Result<Self> {
        if n_workers == 0 {
            return Err(MdbError::Config("cluster needs at least one worker".into()));
        }
        if config.ingest_queue_depth == 0 {
            return Err(MdbError::Config(
                "ingest_queue_depth must be at least 1".into(),
            ));
        }
        if !(1..=n_workers).contains(&config.replication_factor) {
            return Err(MdbError::Config(format!(
                "replication_factor {} must be in 1..={n_workers}",
                config.replication_factor
            )));
        }
        let sizes: HashMap<Gid, usize> = catalog.groups.iter().map(|g| (g.gid, g.size())).collect();
        // A manifest from a previous life of this cluster directory wins
        // over a fresh assignment: failovers and handoffs moved groups, and
        // each worker's log only has the groups that ended up on it.
        let manifest = membership::load_manifest(&config, &catalog, n_workers)?;
        let (holders, removed, held) = match manifest {
            Some(m) => (m.holders, m.removed, m.ever_held),
            None => {
                let assignment =
                    assign_replicas(&catalog.groups, n_workers, config.replication_factor);
                let holders: HashMap<Gid, Vec<usize>> = catalog
                    .groups
                    .iter()
                    .zip(assignment)
                    .map(|(g, holders)| (g.gid, holders))
                    .collect();
                (holders, Vec::new(), HashMap::new())
            }
        };
        // What each slot's log may contain: everything the manifest says it
        // ever held (leftovers from handoffs survive restarts in the
        // append-only logs) plus everything it currently holds.
        let mut ever_held: Vec<HashSet<Gid>> = (0..n_workers)
            .map(|i| held.get(&i).into_iter().flatten().copied().collect())
            .collect();
        for (&gid, hs) in &holders {
            for &h in hs {
                ever_held[h].insert(gid);
            }
        }
        // Each worker's budget is an even share of the cluster-wide one.
        let budget_share = config
            .memory_budget_bytes
            .map(|total| total / n_workers as u64);
        let mut workers = Vec::with_capacity(n_workers);
        for index in 0..n_workers {
            if removed.contains(&index) {
                workers.push(Worker {
                    sender: None,
                    handle: None,
                    shared: Arc::new(WorkerShared::default()),
                    state: WorkerState::Removed,
                    note: Some("removed before restart".into()),
                });
                continue;
            }
            let mut hosted: Vec<Gid> = holders
                .iter()
                .filter(|(_, hs)| hs.contains(&index))
                .map(|(&gid, _)| gid)
                .collect();
            hosted.sort_unstable();
            workers.push(spawn_worker(
                index,
                hosted,
                &catalog,
                &registry,
                &config,
                &sizes,
                budget_share,
            )?);
        }
        let tid_to_row: HashMap<_, _> = catalog
            .series
            .iter()
            .enumerate()
            .map(|(i, m)| (m.tid, i))
            .collect();
        let group_row_indices = catalog
            .groups
            .iter()
            .map(|g| g.tids.iter().map(|t| tid_to_row[t]).collect())
            .collect();
        let scratch_row = Mutex::new(RowBatch::with_capacity(catalog.series.len(), 1));
        let cluster = Self {
            catalog,
            registry,
            config,
            topology: RwLock::new(Topology {
                workers,
                holders,
                ever_held,
            }),
            group_row_indices,
            scratch_row,
            sizes,
        };
        cluster.persist_manifest(&cluster.topo_read());
        Ok(cluster)
    }

    fn topo_read(&self) -> RwLockReadGuard<'_, Topology> {
        self.topology.read().unwrap_or_else(|e| e.into_inner())
    }

    fn topo_write(&self) -> RwLockWriteGuard<'_, Topology> {
        self.topology.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of worker slots (including dead and removed ones; slot
    /// indices are stable for the cluster's lifetime).
    pub fn n_workers(&self) -> usize {
        self.topo_read().workers.len()
    }

    /// The gids each worker holds a copy of, by slot. At replication
    /// factor 1 this is the classic one-owner assignment.
    pub fn assignment(&self) -> Vec<Vec<Gid>> {
        let topo = self.topo_read();
        (0..topo.workers.len())
            .map(|i| topo.hosted_gids(i))
            .collect()
    }

    /// Declares `index` dead (if it was active), promotes replicas by
    /// stripping it from every holder list, and persists the new placement.
    fn declare_dead(&self, index: usize, reason: &str) {
        let mut topo = self.topo_write();
        if topo.mark_dead(index, reason) {
            self.persist_manifest(&topo);
        }
    }

    /// Injects a *silent* crash: the worker thread stops without the master
    /// noticing, exactly like a process dying out from under it. The next
    /// interaction with the worker (ingest routing, flush, query, or a
    /// [`Cluster::health`] probe) observes the disconnected channel and
    /// declares it dead. Returns false if the worker was not active.
    pub fn crash_worker(&self, index: usize) -> bool {
        let topo = self.topo_read();
        let Some(worker) = topo.workers.get(index) else {
            return false;
        };
        if worker.state != WorkerState::Active {
            return false;
        }
        worker.shared.poison.store(true, Ordering::SeqCst);
        if let Some(sender) = &worker.sender {
            // Best-effort wake-up so an idle worker exits promptly; a full
            // queue is fine — the poison flag stops it at the next command.
            let _ = sender.try_send(Command::Die);
        }
        true
    }

    /// Kills a worker *and* tells the master: the crash of
    /// [`Cluster::crash_worker`] plus an immediate declaration, so replicas
    /// are promoted and routing is updated before the next batch. Returns
    /// false if the worker was not active.
    pub fn kill_worker(&self, index: usize) -> bool {
        if !self.crash_worker(index) {
            return false;
        }
        self.declare_dead(index, "killed");
        true
    }

    /// Ingests one full tick: `row[i]` belongs to the series with tid
    /// `catalog.series[i].tid`. This is a batch of one on the
    /// [`Cluster::ingest_batch`] path; bulk ingestion should build a
    /// [`RowBatch`] and call that directly.
    pub fn ingest_row(&self, timestamp: Timestamp, row: &[Option<Value>]) -> Result<()> {
        if row.len() != self.catalog.series.len() {
            return Err(MdbError::Ingestion(format!(
                "row has {} values for {} series",
                row.len(),
                self.catalog.series.len()
            )));
        }
        let mut batch = self.scratch_row.lock().expect("scratch batch poisoned");
        batch.clear();
        batch.push_row(timestamp, row);
        self.ingest_batch(&batch)
    }

    /// Ingests a columnar batch: column `i` of `batch` belongs to the series
    /// with tid `catalog.series[i].tid`. The master splits the batch into
    /// per-group column batches (dropping ticks a whole group missed) and
    /// routes each to **every holder** of the owning group over bounded
    /// channels — a send blocks once a worker is `ingest_queue_depth`
    /// batches behind, so a slow worker exerts backpressure instead of
    /// accumulating unbounded queues.
    ///
    /// A holder that died is declared dead and skipped; as long as each
    /// group kept at least one holder the ingest succeeds (failover is
    /// transparent at replication factor ≥ 2). Groups whose last holder is
    /// gone are reported in the error, as are ingestion errors workers
    /// deferred from earlier batches (which stay pending until a flush
    /// clears them).
    ///
    /// Deferred errors come back as [`MdbError::DeferredIngestion`], which
    /// means *an earlier batch* failed inside a worker — the batch passed to
    /// this call was accepted and will be ingested, so it must **not** be
    /// retried. Only [`MdbError::Ingestion`] means the current batch (or
    /// part of it) was rejected or dropped.
    pub fn ingest_batch(&self, batch: &RowBatch) -> Result<()> {
        if batch.n_series() != self.catalog.series.len() {
            return Err(MdbError::Ingestion(format!(
                "batch has {} columns for {} series",
                batch.n_series(),
                self.catalog.series.len()
            )));
        }
        let mut group_batches: Vec<(Gid, Arc<RowBatch>)> = Vec::new();
        for (group, indices) in self.catalog.groups.iter().zip(&self.group_row_indices) {
            let view = batch.select(indices);
            let mut group_batch: Option<RowBatch> = None;
            for row in 0..view.len() {
                if view.row_all_gaps(row) {
                    continue; // a tick the whole group missed: a gap, not data
                }
                group_batch
                    .get_or_insert_with(|| RowBatch::with_capacity(indices.len(), view.len()))
                    .push_row_with(view.timestamp(row), |s| view.get(row, s));
            }
            if let Some(group_batch) = group_batch {
                group_batches.push((group.gid, Arc::new(group_batch)));
            }
        }
        // Route under the read lock so a concurrent membership change
        // cannot flip holders mid-batch; death declarations wait until the
        // lock is dropped.
        let mut failed_sends: Vec<usize> = Vec::new();
        let mut involved: Vec<usize> = Vec::new();
        let mut dropped_gids: Vec<Gid> = Vec::new();
        {
            let topo = self.topo_read();
            let mut per_worker: HashMap<usize, Vec<GroupBatch>> = HashMap::new();
            for (gid, group_batch) in &group_batches {
                let holders = topo.holders.get(gid).map(Vec::as_slice).unwrap_or(&[]);
                if holders.is_empty() {
                    dropped_gids.push(*gid);
                }
                for &holder in holders {
                    per_worker.entry(holder).or_default().push(GroupBatch {
                        gid: *gid,
                        batch: Arc::clone(group_batch),
                    });
                }
            }
            let mut targets: Vec<usize> = per_worker.keys().copied().collect();
            targets.sort_unstable();
            for index in targets {
                let batches = per_worker.remove(&index).unwrap();
                let gids: Vec<Gid> = batches.iter().map(|b| b.gid).collect();
                let Some(sender) = topo.workers[index].sender.as_ref() else {
                    failed_sends.push(index);
                    dropped_gids.extend(gids);
                    continue;
                };
                involved.push(index);
                if sender.send(Command::Ingest(batches)).is_err() {
                    failed_sends.push(index);
                    dropped_gids.extend(gids);
                }
            }
            // A gid is only lost if *no* holder accepted its batch.
            let failed = std::mem::take(&mut dropped_gids);
            for gid in failed {
                let holders = topo.holders.get(&gid).map(Vec::as_slice).unwrap_or(&[]);
                let survived = holders
                    .iter()
                    .any(|h| !failed_sends.contains(h) && topo.workers[*h].sender.is_some());
                if !survived && !dropped_gids.contains(&gid) {
                    dropped_gids.push(gid);
                }
            }
        }
        for index in &failed_sends {
            self.declare_dead(*index, "died during ingest (channel disconnected)");
        }
        if !dropped_gids.is_empty() {
            dropped_gids.sort_unstable();
            dropped_gids.dedup();
            return Err(MdbError::Ingestion(format!(
                "no surviving worker holds groups {dropped_gids:?}; their data was dropped — \
                 see Cluster::health() for dead workers and lost groups"
            )));
        }
        // Surface ingestion errors workers deferred from earlier batches
        // (kept pending — a flush reports and clears them).
        let topo = self.topo_read();
        for index in involved {
            if let Some((message, extra)) = topo.workers[index].shared.peek_error() {
                return Err(MdbError::DeferredIngestion(format!(
                    "worker {index} deferred an ingestion error: {}",
                    deferred_message(message, extra)
                )));
            }
        }
        Ok(())
    }

    /// Flushes every active worker's buffered ticks and stores. Reports
    /// ingestion errors workers deferred since the last flush (first error
    /// verbatim plus an overflow count; clears them), names the worker in
    /// every error, and declares workers whose channel died. A
    /// [`MdbError::DeferredIngestion`] means the flush itself succeeded and
    /// only pre-existing deferred errors are being surfaced.
    pub fn flush(&self) -> Result<()> {
        let mut replies = Vec::new();
        let mut failed: Vec<usize> = Vec::new();
        {
            let topo = self.topo_read();
            for index in topo.active() {
                let sender = topo.workers[index].sender.as_ref().unwrap();
                let (tx, rx) = bounded(1);
                if sender.send(Command::Flush(tx)).is_err() {
                    failed.push(index);
                } else {
                    replies.push((index, rx));
                }
            }
        }
        let mut first_error: Option<MdbError> = None;
        for (index, rx) in replies {
            match rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    if first_error.is_none() {
                        first_error = Some(match e {
                            MdbError::DeferredIngestion(m) => {
                                MdbError::DeferredIngestion(format!("worker {index}: {m}"))
                            }
                            e => MdbError::Ingestion(format!("worker {index}: {e}")),
                        });
                    }
                }
                Err(_) => failed.push(index),
            }
        }
        for index in &failed {
            self.declare_dead(*index, "died during flush");
        }
        if let Some(&index) = failed.first() {
            return Err(worker_error(index, "died during flush"));
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Executes a SQL query: scatter to all primaries, gather, merge in
    /// global group order, finalize.
    pub fn sql(&self, text: &str) -> Result<QueryResult> {
        self.sql_timed(text).map(|(r, _)| r)
    }

    /// Like [`Cluster::sql`], but also reports each worker's local execution
    /// time. The slowest worker plus the merge is the cluster latency — the
    /// quantity the scale-out experiment of Figure 20 tracks (no shuffling
    /// means per-worker times are independent of the cluster size).
    ///
    /// Each worker computes per-group results for the groups it is primary
    /// of; the master merges them in global gid order, so the result is
    /// bit-identical no matter which workers served (failover and handoff
    /// safe). If a worker dies mid-query it is declared dead and the whole
    /// query retried against the promoted placement; groups with no
    /// surviving holder are omitted (degraded but correct — see
    /// [`Cluster::health`]).
    pub fn sql_timed(&self, text: &str) -> Result<(QueryResult, Vec<Duration>)> {
        let query = Arc::new(mdb_query::parse(text)?);
        let attempts = self.n_workers() + 1;
        for _ in 0..attempts {
            match self.try_sql(&query)? {
                Some(result) => return Ok(result),
                None => continue, // a worker died mid-query: placement changed, retry
            }
        }
        Err(MdbError::Query(
            "query failed: workers kept dying across retries".into(),
        ))
    }

    /// One scatter/gather attempt. `Ok(None)` means a worker died and was
    /// declared dead — the caller should retry against the new placement.
    fn try_sql(&self, query: &Arc<Query>) -> Result<Option<(QueryResult, Vec<Duration>)>> {
        let is_sketch = query
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Sketch(_)));
        let is_aggregate = query
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Agg { .. }));
        // Snapshot the targets under the lock; do the blocking gather
        // without it.
        let targets: Vec<(usize, Sender<Command>, GidScope)> = {
            let topo = self.topo_read();
            topo.active()
                .into_iter()
                .map(|i| {
                    (
                        i,
                        topo.workers[i].sender.clone().unwrap(),
                        Arc::new(topo.primary_gids(i)),
                    )
                })
                .collect()
        };
        if targets.is_empty() {
            return Err(MdbError::Query(
                "no active workers; see Cluster::health()".into(),
            ));
        }
        if is_sketch {
            // Sketch scatter/gather: each worker merges its primary groups'
            // sketches from block metadata; the master merges the worker
            // partials (order-independent) and finalizes. Results are
            // identical at every worker count and replication factor.
            let mut replies = Vec::new();
            for (index, sender, scope) in targets {
                let (tx, rx) = bounded(1);
                if sender
                    .send(Command::QuerySketch(Arc::clone(query), scope, tx))
                    .is_err()
                {
                    self.declare_dead(index, "died during query");
                    return Ok(None);
                }
                replies.push((index, rx));
            }
            let mut partials = Vec::new();
            let mut times = Vec::new();
            for (index, rx) in replies {
                match rx.recv() {
                    Ok(Ok((sketch, elapsed))) => {
                        partials.push(sketch);
                        times.push(elapsed);
                    }
                    Ok(Err(e)) => return Err(MdbError::Query(format!("worker {index}: {e}"))),
                    Err(_) => {
                        self.declare_dead(index, "died during query");
                        return Ok(None);
                    }
                }
            }
            let mut result = QueryEngine::finalize_sketches(query, partials)?;
            QueryEngine::apply_order_limit(&mut result, query)?;
            return Ok(Some((result, times)));
        }
        if is_aggregate {
            let mut replies = Vec::new();
            for (index, sender, scope) in targets {
                let (tx, rx) = bounded(1);
                if sender
                    .send(Command::QueryPartial(Arc::clone(query), scope, tx))
                    .is_err()
                {
                    self.declare_dead(index, "died during query");
                    return Ok(None);
                }
                replies.push((index, rx));
            }
            let mut pairs: Vec<(Gid, PartialAggregates)> = Vec::new();
            let mut times = Vec::new();
            for (index, rx) in replies {
                match rx.recv() {
                    Ok(Ok((partials, elapsed))) => {
                        pairs.extend(partials);
                        times.push(elapsed);
                    }
                    Ok(Err(e)) => return Err(MdbError::Query(format!("worker {index}: {e}"))),
                    Err(_) => {
                        self.declare_dead(index, "died during query");
                        return Ok(None);
                    }
                }
            }
            // Merge in global group order: the fold inside each group is
            // deterministic per holder, and this order is independent of
            // placement — together, bit-identical results everywhere.
            pairs.sort_by_key(|(gid, _)| *gid);
            let mut merged: Option<PartialAggregates> = None;
            for (_, partial) in pairs {
                match &mut merged {
                    None => merged = Some(partial),
                    Some(m) => merge_partials(m, partial),
                }
            }
            let mut result =
                QueryEngine::finalize_aggregates(query, vec![merged.unwrap_or_default()])?;
            QueryEngine::apply_order_limit(&mut result, query)?;
            Ok(Some((result, times)))
        } else {
            // Listing: run without ORDER/LIMIT on workers, apply at master.
            let mut local = (**query).clone();
            local.order_by = None;
            local.limit = None;
            let local = Arc::new(local);
            let mut replies = Vec::new();
            for (index, sender, scope) in targets {
                let (tx, rx) = bounded(1);
                if sender
                    .send(Command::QueryRows(Arc::clone(&local), scope, tx))
                    .is_err()
                {
                    self.declare_dead(index, "died during query");
                    return Ok(None);
                }
                replies.push((index, rx));
            }
            let mut shape: Option<QueryResult> = None;
            let mut pairs: Vec<(Gid, QueryResult)> = Vec::new();
            let mut times = Vec::new();
            for (index, rx) in replies {
                match rx.recv() {
                    Ok(Ok((columns, rows, elapsed))) => {
                        shape.get_or_insert(columns);
                        pairs.extend(rows);
                        times.push(elapsed);
                    }
                    Ok(Err(e)) => return Err(MdbError::Query(format!("worker {index}: {e}"))),
                    Err(_) => {
                        self.declare_dead(index, "died during query");
                        return Ok(None);
                    }
                }
            }
            pairs.sort_by_key(|(gid, _)| *gid);
            let mut result = shape.unwrap_or_default();
            for (_, rows) in pairs {
                result.rows.extend(rows.rows);
            }
            QueryEngine::apply_order_limit(&mut result, query)?;
            Ok(Some((result, times)))
        }
    }

    /// Measures each worker's local execution time for an aggregate query
    /// with the workers queried **one at a time**, so the measurements are
    /// free of CPU contention between worker threads. This is the
    /// measurement behind the simulated scale-out of Figure 20: because
    /// groups never span nodes and queries never shuffle, a real cluster's
    /// latency is `max(worker times) + merge`, and per-worker times are
    /// independent of how many other nodes exist.
    pub fn worker_times_isolated(&self, text: &str) -> Result<Vec<Duration>> {
        let query = Arc::new(mdb_query::parse(text)?);
        let targets: Vec<(usize, Sender<Command>, GidScope)> = {
            let topo = self.topo_read();
            topo.active()
                .into_iter()
                .map(|i| {
                    (
                        i,
                        topo.workers[i].sender.clone().unwrap(),
                        Arc::new(topo.primary_gids(i)),
                    )
                })
                .collect()
        };
        let mut times = Vec::with_capacity(targets.len());
        for (index, sender, scope) in targets {
            let (tx, rx) = bounded(1);
            sender
                .send(Command::QueryPartial(Arc::clone(&query), scope, tx))
                .map_err(|_| {
                    self.declare_dead(index, "died during query");
                    MdbError::Query(format!("worker {index} died during query"))
                })?;
            match rx.recv() {
                Ok(Ok((_, elapsed))) => times.push(elapsed),
                Ok(Err(e)) => return Err(MdbError::Query(format!("worker {index}: {e}"))),
                Err(_) => {
                    self.declare_dead(index, "died during query");
                    return Err(MdbError::Query(format!("worker {index} died during query")));
                }
            }
        }
        Ok(times)
    }

    /// Merged compression statistics, total logical bytes, and segment count
    /// across all workers. Each worker reports only the groups it is
    /// primary of, so replicas (and segments left behind by a handoff) are
    /// never double counted; at replication factor 1 this equals the
    /// embedded engine's accounting exactly.
    pub fn stats(&self) -> Result<(CompressionStats, u64, usize)> {
        let targets: Vec<(usize, Sender<Command>, GidScope)> = {
            let topo = self.topo_read();
            topo.active()
                .into_iter()
                .map(|i| {
                    (
                        i,
                        topo.workers[i].sender.clone().unwrap(),
                        Arc::new(topo.primary_gids(i)),
                    )
                })
                .collect()
        };
        let mut merged = CompressionStats::default();
        let mut bytes = 0;
        let mut segments = 0;
        for (index, sender, scope) in targets {
            let (tx, rx) = bounded(1);
            sender.send(Command::Stats(scope, tx)).map_err(|_| {
                self.declare_dead(index, "died during stats");
                MdbError::Query(format!("worker {index} died during stats"))
            })?;
            match rx.recv() {
                Ok(Ok((stats, b, s))) => {
                    merged.merge(&stats);
                    bytes += b;
                    segments += s;
                }
                Ok(Err(e)) => return Err(MdbError::Query(format!("worker {index}: {e}"))),
                Err(_) => {
                    self.declare_dead(index, "died during stats");
                    return Err(MdbError::Query(format!("worker {index} died during stats")));
                }
            }
        }
        Ok((merged, bytes, segments))
    }

    /// Probes every worker the master still believes alive (a health
    /// command round-trip bounded by
    /// [`ClusterConfig::health_probe_timeout`]) and returns the resulting
    /// snapshot: per-worker lifecycle state, hosted and primary groups,
    /// ingest counters, deferred errors, and the groups that have been lost
    /// outright.
    ///
    /// Only a *disconnected* channel — proof the worker thread is gone — is
    /// treated as death. A probe that merely times out (the health command
    /// queues behind pending batches and any in-flight scan or flush, so a
    /// busy disk-backed worker can be slow without being dead) leaves the
    /// worker active and sets [`WorkerHealth::probe_timed_out`]; re-probe
    /// later to distinguish slow from stuck.
    pub fn health(&self) -> ClusterHealth {
        self.health_with_timeout(self.config.health_probe_timeout)
    }

    /// [`Cluster::health`] with an explicit probe timeout for this call.
    pub fn health_with_timeout(&self, timeout: Duration) -> ClusterHealth {
        let targets: Vec<(usize, Sender<Command>)> = {
            let topo = self.topo_read();
            topo.active()
                .into_iter()
                .map(|i| (i, topo.workers[i].sender.clone().unwrap()))
                .collect()
        };
        let mut timed_out: Vec<usize> = Vec::new();
        for (index, sender) in targets {
            let (tx, rx) = bounded(1);
            if sender.send(Command::Health(tx)).is_err() {
                self.declare_dead(index, "health probe found channel disconnected");
                continue;
            }
            match rx.recv_timeout(timeout) {
                Ok(()) => {}
                // Slow is not dead: the worker is still connected, its
                // queue is just long. Killing it here would turn a lagging
                // worker into (at replication factor 1) reported data loss.
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => timed_out.push(index),
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    self.declare_dead(index, "health probe found channel disconnected");
                }
            }
        }
        let topo = self.topo_read();
        let workers = topo
            .workers
            .iter()
            .enumerate()
            .map(|(index, worker)| {
                let status = worker
                    .shared
                    .status
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                let note = match (&worker.note, &status.panic) {
                    (Some(note), Some(panic)) => Some(format!("{note}; panicked: {panic}")),
                    (Some(note), None) => Some(note.clone()),
                    (None, Some(panic)) => Some(format!("panicked: {panic}")),
                    (None, None) => None,
                };
                WorkerHealth {
                    index,
                    state: worker.state,
                    hosted_gids: topo.hosted_gids(index),
                    primary_gids: topo.primary_gids(index),
                    batches_ingested: status.batches_ingested,
                    first_error: status.first_error.clone(),
                    deferred_errors: status.deferred_errors,
                    probe_timed_out: timed_out.contains(&index),
                    note,
                }
            })
            .collect();
        ClusterHealth {
            replication_factor: self.config.replication_factor,
            workers,
            lost_gids: topo.lost_gids(),
        }
    }

    /// Stops all workers, draining their ingestors and stores. Returns the
    /// first drain failure (with the worker named and further failures
    /// counted) — a disk-backed worker whose final flush failed would
    /// otherwise lose its tail silently.
    pub fn shutdown(mut self) -> Result<()> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<()> {
        let topo = self.topology.get_mut().unwrap_or_else(|e| e.into_inner());
        let mut replies = Vec::new();
        for (index, worker) in topo.workers.iter_mut().enumerate() {
            if let Some(sender) = worker.sender.take() {
                let (tx, rx) = bounded(1);
                if sender.send(Command::Shutdown(tx)).is_ok() {
                    replies.push((index, rx));
                }
            }
        }
        let mut first_error: Option<String> = None;
        let mut extra = 0u64;
        for (index, rx) in replies {
            let failure = match rx.recv() {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(format!("worker {index} shutdown drain failed: {e}")),
                Err(_) => Some(format!("worker {index} died during shutdown")),
            };
            if let Some(failure) = failure {
                if first_error.is_none() {
                    first_error = Some(failure);
                } else {
                    extra += 1;
                }
            }
        }
        for worker in &mut topo.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
        match first_error {
            Some(message) => Err(MdbError::Ingestion(deferred_message(message, extra))),
            None => Ok(()),
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

impl mdb_query::Datastore for Cluster {
    fn backend(&self) -> &'static str {
        "cluster"
    }

    fn ingest_batch(&mut self, batch: &RowBatch) -> Result<()> {
        Cluster::ingest_batch(self, batch)
    }

    fn ingest_points(&mut self, points: &[(Tid, Timestamp, Value)]) -> Result<()> {
        // The cluster's ingest surface is full-width batches; assemble the
        // loose points into rows (timestamp order, absent series = gaps)
        // and route them through the batch path. Rows a whole group missed
        // are dropped before routing, so point streams covering disjoint
        // groups interleave without disturbing each other.
        if points.is_empty() {
            return Ok(());
        }
        let tid_to_row: HashMap<Tid, usize> = self
            .catalog
            .series
            .iter()
            .enumerate()
            .map(|(i, m)| (m.tid, i))
            .collect();
        let width = self.catalog.series.len();
        let mut rows: BTreeMap<Timestamp, Vec<Option<Value>>> = BTreeMap::new();
        for &(tid, timestamp, value) in points {
            let index = *tid_to_row
                .get(&tid)
                .ok_or_else(|| MdbError::NotFound(format!("time series {tid}")))?;
            rows.entry(timestamp).or_insert_with(|| vec![None; width])[index] = Some(value);
        }
        let mut batch = RowBatch::with_capacity(width, rows.len());
        for (timestamp, row) in rows {
            batch.push_row(timestamp, &row);
        }
        Cluster::ingest_batch(self, &batch)
    }

    fn sql(&self, query: &str) -> Result<QueryResult> {
        Cluster::sql(self, query)
    }

    fn flush(&mut self) -> Result<()> {
        Cluster::flush(self)
    }

    fn health(&self) -> Result<mdb_query::DatastoreHealth> {
        let health = Cluster::health(self);
        Ok(mdb_query::DatastoreHealth {
            backend: "cluster".to_string(),
            degraded: health.is_degraded(),
            detail: format!(
                "{}/{} workers active, replication factor {}{}",
                health.active_workers(),
                health.workers.len(),
                health.replication_factor,
                if health.lost_gids.is_empty() {
                    String::new()
                } else {
                    format!(", {} groups lost", health.lost_gids.len())
                }
            ),
            lost_gids: health.lost_gids,
        })
    }
}

/// Spawns one worker slot: builds its store (disk recovery errors surface
/// here, in the master, instead of killing a thread silently), its shared
/// status block, and the supervised thread whose panics are caught and
/// recorded rather than lost.
fn spawn_worker(
    index: usize,
    hosted: Vec<Gid>,
    catalog: &Arc<Catalog>,
    registry: &Arc<ModelRegistry>,
    config: &ClusterConfig,
    sizes: &HashMap<Gid, usize>,
    budget_share: Option<u64>,
) -> Result<Worker> {
    let (sender, receiver) = bounded::<Command>(config.ingest_queue_depth);
    let bounds_registry = Arc::clone(registry);
    let bounds_sizes = sizes.clone();
    let value_bounds: mdb_storage::ValueBoundsFn = Arc::new(move |segment: &_| {
        mdb_models::segment_value_range(&bounds_registry, segment, *bounds_sizes.get(&segment.gid)?)
    });
    let sketch_feed = mdb_query::sketch_feed(catalog, registry);
    let rollup_feed = (!config.rollup_levels.is_empty())
        .then(|| mdb_query::rollup_feed(catalog, registry, &config.rollup_levels));
    let store: Box<dyn SegmentStore> = match &config.storage_dir {
        Some(dir) => Box::new(DiskStore::open_with(
            &dir.join(format!("worker-{index}")),
            DiskStoreOptions {
                bulk_write_size: config.bulk_write_size,
                memory_budget_bytes: budget_share,
                value_bounds: Some(value_bounds),
                sketch_feed: Some(sketch_feed),
                rollup_feed,
                prefetch_depth: config.prefetch_depth,
                ..Default::default()
            },
        )?),
        None => {
            let mut store =
                MemoryStore::with_value_bounds(value_bounds).with_sketch_feed(sketch_feed);
            if let Some(feed) = rollup_feed {
                store = store.with_rollup_feed(feed);
            }
            Box::new(store)
        }
    };
    let shared = Arc::new(WorkerShared::default());
    let thread_shared = Arc::clone(&shared);
    let catalog_ref = Arc::clone(catalog);
    let registry_ref = Arc::clone(registry);
    let compression = config.compression.clone();
    let query_parallelism = config.query_parallelism;
    let rollup_levels = config.rollup_levels.clone();
    let rollup_serve = config.rollup_serve;
    let handle = std::thread::spawn(move || {
        let panic_shared = Arc::clone(&thread_shared);
        let result = catch_unwind(AssertUnwindSafe(move || {
            worker_loop(
                receiver,
                catalog_ref,
                registry_ref,
                compression,
                query_parallelism,
                rollup_levels,
                rollup_serve,
                hosted,
                store,
                thread_shared,
            );
        }));
        if let Err(payload) = result {
            let message = panic_payload(&payload);
            let mut status = panic_shared
                .status
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            status.panic = Some(message.clone());
            if status.first_error.is_none() {
                status.first_error = Some(format!("worker panicked: {message}"));
            } else {
                status.deferred_errors += 1;
            }
        }
    });
    Ok(Worker {
        sender: Some(sender),
        handle: Some(handle),
        shared,
        state: WorkerState::Active,
        note: None,
    })
}

fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Builds the ingestor for one group (used at spawn time and when a
/// handoff or replica batch brings a new group to this worker).
fn make_ingestor(
    gid: Gid,
    catalog: &Catalog,
    registry: &Arc<ModelRegistry>,
    config: &CompressionConfig,
) -> GroupIngestor {
    let group = catalog.group(gid).expect("routed gid must exist").clone();
    let scaling: Vec<f64> = group.tids.iter().map(|t| catalog.scaling_of(*t)).collect();
    GroupIngestor::new(group, scaling, Arc::clone(registry), config.clone()).expect("valid group")
}

/// One worker: the per-node stack of Figure 4. The local store (built by
/// `start_with`: memory-resident, or out-of-core disk with a share of the
/// cluster's memory budget) maintains a value-bounded zone map, so every
/// worker prunes its own segment runs — and, on disk, skips whole blocks
/// before fetching them — before computing partials; the scatter/gather
/// path reuses exactly the single-node pruned scan, once per scoped group.
///
/// Ingestors live in a `BTreeMap` so drains walk groups in ascending gid
/// order — deterministic, and identical on every holder of a group.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    receiver: Receiver<Command>,
    catalog: Arc<Catalog>,
    registry: Arc<ModelRegistry>,
    config: CompressionConfig,
    query_parallelism: usize,
    rollup_levels: Vec<TimeLevel>,
    rollup_serve: bool,
    hosted: Vec<Gid>,
    mut store: Box<dyn SegmentStore>,
    shared: Arc<WorkerShared>,
) {
    // Per-worker persistent scan pool (opt-in: one worker per node is the
    // default because nodes already scan concurrently during scatter/gather).
    let scan_pool = (query_parallelism != 1).then(|| {
        ScanPool::new(
            Arc::clone(&catalog),
            Arc::clone(&registry),
            query_parallelism,
        )
    });
    let mut ingestors: BTreeMap<Gid, GroupIngestor> = hosted
        .into_iter()
        .map(|gid| (gid, make_ingestor(gid, &catalog, &registry, &config)))
        .collect();
    // Compression counters adopted with handed-off groups: the fresh local
    // ingestor starts at zero, so the source's counters ride along here.
    let mut carried_stats: BTreeMap<Gid, CompressionStats> = BTreeMap::new();
    while let Ok(command) = receiver.recv() {
        // Crash injection: a poisoned worker stops *before* processing the
        // command it just received, like a process crashing mid-stream —
        // everything still queued is discarded with it.
        if shared.poison.load(Ordering::SeqCst) {
            break;
        }
        match command {
            Command::Ingest(batches) => {
                let mut ingested = 0;
                for group_batch in batches {
                    let ingestor = ingestors.entry(group_batch.gid).or_insert_with(|| {
                        make_ingestor(group_batch.gid, &catalog, &registry, &config)
                    });
                    match ingestor.push_batch(group_batch.batch.view()) {
                        Ok(segments) => {
                            for segment in segments {
                                if let Err(e) = store.insert(segment) {
                                    shared.record_error(e.to_string());
                                }
                            }
                        }
                        Err(e) => shared.record_error(e.to_string()),
                    }
                    ingested += 1;
                }
                let mut status = shared.status.lock().unwrap_or_else(|e| e.into_inner());
                status.batches_ingested += ingested;
            }
            Command::Flush(reply) => {
                let drain = drain_all(&mut ingestors, store.as_mut());
                // Deferred ingestion errors pre-date anything this flush
                // hit, so they are reported first; reporting clears them.
                // The variant records whether this drain itself succeeded.
                let result = match shared.take_error() {
                    Some((message, extra)) => {
                        let deferred = deferred_message(message, extra);
                        Err(match &drain {
                            Ok(()) => MdbError::DeferredIngestion(deferred),
                            Err(e) => {
                                MdbError::Ingestion(format!("{deferred}; drain also failed: {e}"))
                            }
                        })
                    }
                    None => drain,
                };
                let _ = reply.send(result);
            }
            Command::QueryPartial(query, scope, reply) => {
                let start = Instant::now();
                let run = || -> Result<Vec<(Gid, PartialAggregates)>> {
                    let mut out = Vec::with_capacity(scope.len());
                    for gid in scope.iter() {
                        let mut engine = QueryEngine::new(&catalog, &registry, store.as_ref())
                            .with_parallelism(query_parallelism)
                            .with_rollups(&rollup_levels, rollup_serve)
                            .with_gid_scope(std::slice::from_ref(gid));
                        if let Some(pool) = &scan_pool {
                            engine = engine.with_scan_pool(pool);
                        }
                        out.push((*gid, engine.aggregate_partial(&query)?));
                    }
                    Ok(out)
                };
                let _ = reply.send(run().map(|p| (p, start.elapsed())));
            }
            Command::QuerySketch(query, scope, reply) => {
                let start = Instant::now();
                let run = || -> Result<BlockSketch> {
                    QueryEngine::new(&catalog, &registry, store.as_ref())
                        .with_gid_scope(&scope)
                        .sketch_partial(&query)
                };
                let _ = reply.send(run().map(|sketch| (sketch, start.elapsed())));
            }
            Command::QueryRows(query, scope, reply) => {
                let start = Instant::now();
                let run = || -> Result<(QueryResult, Vec<(Gid, QueryResult)>)> {
                    // A scan scoped to no groups yields the column shape
                    // without touching segments.
                    let shape = QueryEngine::new(&catalog, &registry, store.as_ref())
                        .with_gid_scope(&[])
                        .listing(&query)?;
                    let mut per_gid = Vec::new();
                    for gid in scope.iter() {
                        let rows = QueryEngine::new(&catalog, &registry, store.as_ref())
                            .with_gid_scope(std::slice::from_ref(gid))
                            .listing(&query)?;
                        if !rows.rows.is_empty() {
                            per_gid.push((*gid, rows));
                        }
                    }
                    Ok((shape, per_gid))
                };
                let _ = reply.send(run().map(|(shape, rows)| (shape, rows, start.elapsed())));
            }
            Command::Stats(scope, reply) => {
                let mut stats = CompressionStats::default();
                for gid in scope.iter() {
                    if let Some(adopted) = carried_stats.get(gid) {
                        stats.merge(adopted);
                    }
                    if let Some(ingestor) = ingestors.get(gid) {
                        stats.merge(ingestor.stats());
                    }
                }
                let mut bytes = 0u64;
                let mut count = 0usize;
                let predicate = SegmentPredicate::for_gids(scope.to_vec());
                let result = store
                    .scan(&predicate, &mut |segment| {
                        bytes += segment.storage_bytes() as u64;
                        count += 1;
                    })
                    .map(|_| (stats, bytes, count));
                let _ = reply.send(result);
            }
            Command::Health(reply) => {
                let _ = reply.send(());
            }
            Command::Export(gids, reply) => {
                let _ = reply.send(export_groups(
                    &gids,
                    &mut ingestors,
                    &mut carried_stats,
                    store.as_mut(),
                ));
            }
            Command::Import(groups, reply) => {
                let run = || -> Result<()> {
                    for (gid, runs, stats) in groups {
                        ingestors
                            .entry(gid)
                            .or_insert_with(|| make_ingestor(gid, &catalog, &registry, &config));
                        carried_stats.entry(gid).or_default().merge(&stats);
                        for run in runs {
                            store.import_run(run)?;
                        }
                    }
                    store.flush()
                };
                let _ = reply.send(run());
            }
            Command::Die => break,
            Command::Shutdown(reply) => {
                let mut result = drain_all(&mut ingestors, store.as_mut());
                if result.is_ok() {
                    if let Some((message, extra)) = shared.take_error() {
                        result = Err(MdbError::Ingestion(deferred_message(message, extra)));
                    }
                }
                if let Err(e) = &result {
                    shared.record_error(e.to_string());
                }
                let _ = reply.send(result);
                break;
            }
        }
    }
}

/// Drains every ingestor into the store (ascending gid order) and flushes
/// the store, keeping the *first* error and completing the rest of the
/// drain regardless — one bad group must not hold other groups' data
/// hostage.
fn drain_all(
    ingestors: &mut BTreeMap<Gid, GroupIngestor>,
    store: &mut dyn SegmentStore,
) -> Result<()> {
    let mut result = Ok(());
    let record = |e: MdbError, result: &mut Result<()>| {
        if result.is_ok() {
            *result = Err(e);
        }
    };
    for ingestor in ingestors.values_mut() {
        match ingestor.flush() {
            Ok(segments) => {
                for segment in segments {
                    if let Err(e) = store.insert(segment) {
                        record(e, &mut result);
                    }
                }
            }
            Err(e) => record(e, &mut result),
        }
    }
    if let Err(e) = store.flush() {
        record(e, &mut result);
    }
    result
}

/// The worker-side sending half of a handoff: drain each group's ingestor
/// into the store, make everything durable, and export the group's segment
/// runs in deterministic per-group scan order, together with the
/// compression counters the group accumulated here. The exported segments
/// stay in the local log (append-only stores cannot delete), but the
/// master's primary-scoped queries and statistics never look at them again.
fn export_groups(
    gids: &[Gid],
    ingestors: &mut BTreeMap<Gid, GroupIngestor>,
    carried_stats: &mut BTreeMap<Gid, CompressionStats>,
    store: &mut dyn SegmentStore,
) -> Result<Vec<GroupRuns>> {
    let mut shipped_stats: Vec<CompressionStats> = Vec::with_capacity(gids.len());
    for gid in gids {
        let mut stats = carried_stats.remove(gid).unwrap_or_default();
        if let Some(mut ingestor) = ingestors.remove(gid) {
            for segment in ingestor.flush()? {
                store.insert(segment)?;
            }
            // After the flush, so the counters include its final segments.
            stats.merge(ingestor.stats());
        }
        shipped_stats.push(stats);
    }
    store.flush()?;
    let mut out = Vec::with_capacity(gids.len());
    for (gid, stats) in gids.iter().zip(shipped_stats) {
        out.push((*gid, store.export_runs(std::slice::from_ref(gid))?, stats));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdb_partitioner::{partition, CorrelationSpec};
    use mdb_types::GroupMeta;

    /// Builds a catalog + cluster from the EP-like tiny data set.
    fn build(n_workers: usize) -> (Arc<Catalog>, Cluster, mdb_datagen::Dataset) {
        let (catalog, ds) = catalog_and_data();
        let registry = Arc::new(ModelRegistry::standard());
        let config = CompressionConfig::with_relative_bound(5.0);
        let cluster = Cluster::start(Arc::clone(&catalog), registry, config, n_workers).unwrap();
        (catalog, cluster, ds)
    }

    fn catalog_and_data() -> (Arc<Catalog>, mdb_datagen::Dataset) {
        let ds = mdb_datagen::ep(5, mdb_datagen::Scale::tiny()).unwrap();
        let parts = partition(
            &ds.series,
            &ds.dimensions,
            &ds.correlation_spec(),
            &ds.sources,
        )
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.dimensions = ds.dimensions.clone();
        for (i, group_tids) in parts.groups.iter().enumerate() {
            let gid = (i + 1) as Gid;
            for (j, tid) in group_tids.iter().enumerate() {
                let mut meta = ds.series.iter().find(|m| m.tid == *tid).unwrap().clone();
                meta.gid = gid;
                meta.scaling = parts.scaling[i][j];
                catalog.series.push(meta);
            }
            catalog.groups.push(GroupMeta {
                gid,
                tids: group_tids.clone(),
                sampling_interval: 60_000,
            });
        }
        catalog.series.sort_by_key(|m| m.tid);
        let registry = ModelRegistry::standard();
        catalog.model_names = registry.names().iter().map(|s| s.to_string()).collect();
        (Arc::new(catalog), ds)
    }

    fn start_replicated(
        catalog: &Arc<Catalog>,
        n_workers: usize,
        replication_factor: usize,
    ) -> Cluster {
        let mut config =
            ClusterConfig::with_compression(CompressionConfig::with_relative_bound(5.0));
        config.replication_factor = replication_factor;
        Cluster::start_with(
            Arc::clone(catalog),
            Arc::new(ModelRegistry::standard()),
            config,
            n_workers,
        )
        .unwrap()
    }

    fn ingest_all(cluster: &Cluster, ds: &mdb_datagen::Dataset, ticks: u64) {
        for tick in 0..ticks {
            cluster
                .ingest_row(ds.timestamp(tick), &ds.row(tick))
                .unwrap();
        }
        cluster.flush().unwrap();
    }

    const QUERIES: [&str; 4] = [
        "SELECT COUNT_S(*) FROM Segment",
        "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
        "SELECT Entity, AVG_S(*) FROM Segment GROUP BY Entity ORDER BY Entity",
        "SELECT Tid, CUBE_SUM_DAY(*) FROM Segment WHERE Tid IN (1, 2) GROUP BY Tid",
    ];

    #[test]
    fn batched_ingestion_matches_row_at_a_time() {
        let (_, by_row, ds) = build(2);
        ingest_all(&by_row, &ds, 300);
        // Batch path with a deliberately tiny queue depth so the test also
        // exercises backpressure (sends block until the workers drain).
        let (catalog, default_cluster, _) = build(2);
        drop(default_cluster);
        let mut config =
            ClusterConfig::with_compression(CompressionConfig::with_relative_bound(5.0));
        config.ingest_queue_depth = 1;
        let by_batch =
            Cluster::start_with(catalog, Arc::new(ModelRegistry::standard()), config, 2).unwrap();
        let mut batch = mdb_types::RowBatch::with_capacity(ds.n_series(), 64);
        let mut tick = 0u64;
        while tick < 300 {
            batch.clear();
            for t in tick..(tick + 64).min(300) {
                batch.push_row_with(ds.timestamp(t), |s| ds.value(s as u32 + 1, t));
            }
            by_batch.ingest_batch(&batch).unwrap();
            tick += 64;
        }
        by_batch.flush().unwrap();
        for q in [
            "SELECT COUNT_S(*) FROM Segment",
            "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
        ] {
            let a = by_row.sql(q).unwrap();
            let b = by_batch.sql(q).unwrap();
            assert_eq!(a.rows, b.rows, "{q}");
        }
        let (sa, _, _) = by_row.stats().unwrap();
        let (sb, _, _) = by_batch.stats().unwrap();
        assert_eq!(sa.rows, sb.rows);
        assert_eq!(sa.data_points, sb.data_points);
        by_row.shutdown().unwrap();
        by_batch.shutdown().unwrap();
    }

    #[test]
    fn disk_backed_workers_answer_like_memory_workers_and_survive_restart() {
        let dir = mdb_testutil::TempDir::new("cluster-disk");
        let (_, by_memory, ds) = build(2);
        ingest_all(&by_memory, &ds, 300);
        let (catalog, default_cluster, _) = build(2);
        drop(default_cluster);
        // Disk-backed workers with a deliberately tiny shared budget: every
        // worker gets budget / n_workers for its block cache, and a small
        // bulk write size produces multiple blocks per worker.
        let mut config =
            ClusterConfig::with_compression(CompressionConfig::with_relative_bound(5.0));
        config.storage_dir = Some(dir.path().to_path_buf());
        config.bulk_write_size = 16;
        config.memory_budget_bytes = Some(64 * 1024);
        let registry = Arc::new(ModelRegistry::standard());
        let by_disk = Cluster::start_with(
            Arc::clone(&catalog),
            Arc::clone(&registry),
            config.clone(),
            2,
        )
        .unwrap();
        ingest_all(&by_disk, &ds, 300);
        let queries = [
            "SELECT COUNT_S(*) FROM Segment",
            "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
        ];
        // Memory and disk stores scan each group in different (each
        // deterministic) orders, so float sums may differ in association:
        // compare tolerantly across store kinds. Bit-identity is guaranteed
        // — and asserted below — only between runs of the *same* store.
        let assert_close = |a: &QueryResult, b: &QueryResult, label: &str| {
            assert_eq!(a.rows.len(), b.rows.len(), "{label}");
            for (x, y) in a.rows.iter().flatten().zip(b.rows.iter().flatten()) {
                match (x.as_f64(), y.as_f64()) {
                    (Some(x), Some(y)) => {
                        assert!(
                            (x - y).abs() <= 1e-6 * y.abs().max(1.0),
                            "{label}: {x} vs {y}"
                        )
                    }
                    _ => assert_eq!(x, y, "{label}"),
                }
            }
        };
        for q in queries {
            assert_close(&by_memory.sql(q).unwrap(), &by_disk.sql(q).unwrap(), q);
        }
        // Ingest a tail of ticks WITHOUT an explicit flush: shutdown must
        // drain the ingestors and write buffers so nothing is lost.
        for tick in 300..350 {
            by_disk
                .ingest_row(ds.timestamp(tick), &ds.row(tick))
                .unwrap();
        }
        by_disk.shutdown().unwrap();
        for tick in 300..350 {
            by_memory
                .ingest_row(ds.timestamp(tick), &ds.row(tick))
                .unwrap();
        }
        by_memory.flush().unwrap();
        // Restarting over the same directory recovers every worker's log,
        // including the tail made durable by the shutdown drain.
        let reopened = Cluster::start_with(catalog, registry, config, 2).unwrap();
        for q in queries {
            assert_close(
                &by_memory.sql(q).unwrap(),
                &reopened.sql(q).unwrap(),
                &format!("{q} after restart"),
            );
        }
        // Same store state, same scan order: a second reopened run is
        // bit-identical to the first.
        let again: Vec<QueryResult> = queries.iter().map(|q| reopened.sql(q).unwrap()).collect();
        for (q, want) in queries.iter().zip(&again) {
            assert_eq!(&reopened.sql(q).unwrap(), want, "{q} re-run");
        }
        reopened.shutdown().unwrap();
        by_memory.shutdown().unwrap();
    }

    #[test]
    fn zero_queue_depth_rejected() {
        let catalog = Arc::new(Catalog::new());
        let registry = Arc::new(ModelRegistry::standard());
        let config =
            ClusterConfig::from_common(CommonOptions::builder().ingest_queue_depth(0).build());
        assert!(Cluster::start_with(catalog, registry, config, 1).is_err());
    }

    #[test]
    fn replication_factor_must_fit_cluster() {
        let catalog = Arc::new(Catalog::new());
        let registry = Arc::new(ModelRegistry::standard());
        for bad in [0, 3] {
            let config = ClusterConfig {
                replication_factor: bad,
                ..ClusterConfig::default()
            };
            assert!(
                Cluster::start_with(Arc::clone(&catalog), Arc::clone(&registry), config, 2)
                    .is_err(),
                "replication_factor {bad} with 2 workers"
            );
        }
    }

    #[test]
    fn single_worker_end_to_end() {
        let (_, cluster, ds) = build(1);
        ingest_all(&cluster, &ds, 300);
        let r = cluster.sql("SELECT COUNT_S(*) FROM Segment").unwrap();
        let count = r.rows[0][0].as_i64().unwrap();
        assert_eq!(count as u64, ds.count_data_points(300));
        cluster.shutdown().unwrap();
    }

    #[test]
    fn results_are_identical_across_cluster_sizes() {
        let (_, one, ds) = build(1);
        ingest_all(&one, &ds, 300);
        let baseline: Vec<QueryResult> = QUERIES.iter().map(|q| one.sql(q).unwrap()).collect();
        one.shutdown().unwrap();
        for n in [2, 3] {
            let (_, cluster, ds) = build(n);
            ingest_all(&cluster, &ds, 300);
            for (q, expected) in QUERIES.iter().zip(&baseline) {
                // Per-group partials merged in global gid order: the result
                // is bit-identical regardless of the cluster size.
                assert_eq!(&cluster.sql(q).unwrap(), expected, "{q} with {n} workers");
            }
            cluster.shutdown().unwrap();
        }
    }

    #[test]
    fn replicated_cluster_answers_identically_to_unreplicated() {
        let (catalog, plain, ds) = build(3);
        ingest_all(&plain, &ds, 300);
        let baseline: Vec<QueryResult> = QUERIES.iter().map(|q| plain.sql(q).unwrap()).collect();
        plain.shutdown().unwrap();
        let replicated = start_replicated(&catalog, 3, 2);
        ingest_all(&replicated, &ds, 300);
        for (q, expected) in QUERIES.iter().zip(&baseline) {
            assert_eq!(&replicated.sql(q).unwrap(), expected, "{q} at rf=2");
        }
        // Each group is hosted on exactly two workers, primaries distinct.
        let health = replicated.health();
        let hosted_total: usize = health.workers.iter().map(|w| w.hosted_gids.len()).sum();
        assert_eq!(hosted_total, 2 * catalog.groups.len());
        let primary_total: usize = health.workers.iter().map(|w| w.primary_gids.len()).sum();
        assert_eq!(primary_total, catalog.groups.len());
        // Stats are primary-scoped, so replication never double counts.
        let (stats, _, _) = replicated.stats().unwrap();
        assert_eq!(stats.data_points, ds.count_data_points(300));
        replicated.shutdown().unwrap();
    }

    #[test]
    fn killing_a_worker_with_replication_preserves_results_exactly() {
        let (catalog, baseline, ds) = build(3);
        drop(baseline);
        let never_failed = start_replicated(&catalog, 3, 2);
        ingest_all(&never_failed, &ds, 300);
        let expected: Vec<QueryResult> = QUERIES
            .iter()
            .map(|q| never_failed.sql(q).unwrap())
            .collect();
        never_failed.shutdown().unwrap();
        for victim in 0..3 {
            let cluster = start_replicated(&catalog, 3, 2);
            for tick in 0..150 {
                cluster
                    .ingest_row(ds.timestamp(tick), &ds.row(tick))
                    .unwrap();
            }
            assert!(cluster.kill_worker(victim));
            // Failover is transparent: ingestion keeps succeeding because
            // every group still has a live holder.
            for tick in 150..300 {
                cluster
                    .ingest_row(ds.timestamp(tick), &ds.row(tick))
                    .unwrap();
            }
            cluster.flush().unwrap();
            for (q, want) in QUERIES.iter().zip(&expected) {
                assert_eq!(&cluster.sql(q).unwrap(), want, "{q} after killing {victim}");
            }
            let health = cluster.health();
            assert_eq!(health.workers[victim].state, WorkerState::Dead);
            assert!(health.lost_gids.is_empty());
            assert!(health.is_degraded());
            cluster.shutdown().unwrap();
        }
    }

    #[test]
    fn unreplicated_worker_loss_is_detected_and_reported() {
        let (catalog, cluster, ds) = build(2);
        for tick in 0..100 {
            cluster
                .ingest_row(ds.timestamp(tick), &ds.row(tick))
                .unwrap();
        }
        assert!(cluster.kill_worker(0));
        // Every tick routes data to groups the dead worker owned, so the
        // loss is reported (with a pointer at health()) instead of silent.
        let err = cluster.ingest_row(ds.timestamp(100), &ds.row(100));
        let message = format!("{}", err.unwrap_err());
        assert!(message.contains("health"), "unexpected error: {message}");
        let health = cluster.health();
        assert_eq!(health.workers[0].state, WorkerState::Dead);
        assert!(!health.lost_gids.is_empty());
        assert!(health.is_degraded());
        // Degraded queries still answer from the surviving worker.
        cluster.flush().unwrap();
        let r = cluster.sql("SELECT COUNT_S(*) FROM Segment").unwrap();
        assert!(r.rows[0][0].as_i64().unwrap() > 0);
        let surviving: usize = health.workers[1].primary_gids.len();
        assert_eq!(surviving + health.lost_gids.len(), catalog.groups.len());
        cluster.shutdown().unwrap();
    }

    #[test]
    fn silent_crash_is_detected_at_the_next_flush() {
        let (_, cluster, ds) = build(2);
        for tick in 0..50 {
            cluster
                .ingest_row(ds.timestamp(tick), &ds.row(tick))
                .unwrap();
        }
        cluster.flush().unwrap();
        assert!(cluster.crash_worker(1));
        // The master has not been told; the next flush observes the
        // disconnected channel, names the worker, and declares it dead.
        let mut observed = None;
        for _ in 0..100 {
            match cluster.flush() {
                Ok(()) => std::thread::sleep(Duration::from_millis(2)),
                Err(e) => {
                    observed = Some(format!("{e}"));
                    break;
                }
            }
        }
        let message = observed.expect("crash never detected");
        assert!(message.contains("worker 1"), "unexpected error: {message}");
        assert_eq!(cluster.health().workers[1].state, WorkerState::Dead);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn deferred_ingest_errors_keep_first_and_count_rest() {
        let (_, cluster, ds) = build(1);
        for tick in 0..10 {
            cluster
                .ingest_row(ds.timestamp(tick), &ds.row(tick))
                .unwrap();
        }
        // Out-of-order timestamps are rejected by the group ingestors
        // *inside the worker*, after the send already succeeded — exactly
        // the deferred case. Push several so the overflow count engages.
        let mut reported = None;
        for _ in 0..50 {
            match cluster.ingest_row(ds.timestamp(0), &ds.row(0)) {
                Ok(()) => std::thread::sleep(Duration::from_millis(2)),
                Err(e) => {
                    reported = Some(e);
                    break;
                }
            }
        }
        // The deferred error surfaces on a later ingest (satellite: not
        // only at flush), names the worker, and is the distinct
        // DeferredIngestion variant: the batch of the reporting call was
        // accepted, so callers must not retry it.
        let error = reported.expect("deferred error never surfaced on ingest");
        assert!(
            matches!(error, MdbError::DeferredIngestion(_)),
            "expected DeferredIngestion, got {error}"
        );
        let message = format!("{error}");
        assert!(message.contains("worker 0"), "{message}");
        // Flush reports the deferred state (first error kept verbatim,
        // later ones only counted) and clears it. The flush itself drained
        // fine, so the variant again marks the error as deferred-only.
        let flushed = cluster.flush().unwrap_err();
        assert!(
            matches!(flushed, MdbError::DeferredIngestion(_)),
            "expected DeferredIngestion from flush, got {flushed}"
        );
        // Reporting cleared the deferred state: the next flush succeeds.
        cluster.flush().unwrap();
        assert_eq!(cluster.health().workers[0].first_error, None);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn shutdown_reports_failed_drain_of_disk_worker() {
        let dir = mdb_testutil::TempDir::new("cluster-drain-fail");
        let (catalog, default_cluster, ds) = build(1);
        drop(default_cluster);
        let mut config =
            ClusterConfig::with_compression(CompressionConfig::with_relative_bound(5.0));
        config.storage_dir = Some(dir.path().to_path_buf());
        config.bulk_write_size = 8;
        let cluster = Cluster::start_with(
            Arc::clone(&catalog),
            Arc::new(ModelRegistry::standard()),
            config,
            1,
        )
        .unwrap();
        ingest_all(&cluster, &ds, 100);
        // Leave un-flushed ticks pending, then make the store's sidecar
        // un-replaceable: the final drain's flush cannot rename its temp
        // file over a non-empty directory.
        for tick in 100..160 {
            cluster
                .ingest_row(ds.timestamp(tick), &ds.row(tick))
                .unwrap();
        }
        let sidecar = dir.path().join("worker-0").join("segments.idx");
        std::fs::remove_file(&sidecar).unwrap();
        std::fs::create_dir(&sidecar).unwrap();
        std::fs::write(sidecar.join("occupied"), b"x").unwrap();
        let err = cluster.shutdown().unwrap_err();
        let message = format!("{err}");
        assert!(
            message.contains("worker 0") && message.contains("shutdown drain failed"),
            "unexpected shutdown error: {message}"
        );
    }

    #[test]
    fn groups_never_span_workers() {
        let (catalog, cluster, _) = build(3);
        let assignment = cluster.assignment();
        let mut seen = Vec::new();
        for gids in &assignment {
            for gid in gids {
                assert!(!seen.contains(gid), "gid {gid} on two workers");
                seen.push(*gid);
            }
        }
        assert_eq!(seen.len(), catalog.groups.len());
        cluster.shutdown().unwrap();
    }

    #[test]
    fn listing_queries_merge_rows_with_order_and_limit() {
        let (_, cluster, ds) = build(2);
        ingest_all(&cluster, &ds, 200);
        let ts = ds.timestamp(50);
        let r = cluster
            .sql(&format!(
                "SELECT Tid, TS, Value FROM DataPoint WHERE TS = {ts} ORDER BY Tid LIMIT 4"
            ))
            .unwrap();
        assert!(r.rows.len() <= 4);
        let tids: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
        let mut sorted = tids.clone();
        sorted.sort();
        assert_eq!(tids, sorted);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn timed_queries_report_per_worker_latency() {
        let (_, cluster, ds) = build(2);
        ingest_all(&cluster, &ds, 200);
        let (_, times) = cluster.sql_timed("SELECT COUNT_S(*) FROM Segment").unwrap();
        assert_eq!(times.len(), 2);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn stats_merge_across_workers() {
        let (_, cluster, ds) = build(2);
        ingest_all(&cluster, &ds, 300);
        let (stats, bytes, segments) = cluster.stats().unwrap();
        assert_eq!(stats.data_points, ds.count_data_points(300));
        assert!(bytes > 0);
        assert!(segments > 0);
        assert_eq!(stats.segments as usize, segments);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn zero_workers_rejected() {
        let catalog = Arc::new(Catalog::new());
        let registry = Arc::new(ModelRegistry::standard());
        assert!(Cluster::start(catalog, registry, CompressionConfig::default(), 0).is_err());
    }

    #[test]
    fn bad_sql_propagates_errors() {
        let (_, cluster, ds) = build(2);
        ingest_all(&cluster, &ds, 50);
        assert!(cluster.sql("SELECT NOPE(*) FROM Segment").is_err());
        assert!(cluster
            .sql("SELECT COUNT_S(*) FROM Segment WHERE Altitude = 'x'")
            .is_err());
        cluster.shutdown().unwrap();
    }

    #[test]
    fn correlation_spec_none_reproduces_modelardb_v1() {
        // With no correlation hints every series is its own group — the
        // ModelarDBv1 baseline of the evaluation.
        let ds = mdb_datagen::ep(5, mdb_datagen::Scale::tiny()).unwrap();
        let parts = partition(
            &ds.series,
            &ds.dimensions,
            &CorrelationSpec::none(),
            &ds.sources,
        )
        .unwrap();
        assert_eq!(parts.groups.len(), ds.n_series());
    }

    #[test]
    fn add_worker_rebalances_and_preserves_results() {
        let (_, cluster, ds) = build(2);
        ingest_all(&cluster, &ds, 300);
        let baseline: Vec<QueryResult> = QUERIES.iter().map(|q| cluster.sql(q).unwrap()).collect();
        let index = cluster.add_worker().unwrap();
        assert_eq!(index, 2);
        let assignment = cluster.assignment();
        assert!(
            !assignment[2].is_empty(),
            "new worker received no groups: {assignment:?}"
        );
        for (q, want) in QUERIES.iter().zip(&baseline) {
            assert_eq!(&cluster.sql(q).unwrap(), want, "{q} after add_worker");
        }
        let (stats, _, _) = cluster.stats().unwrap();
        assert_eq!(stats.data_points, ds.count_data_points(300));
        cluster.shutdown().unwrap();
    }

    #[test]
    fn remove_worker_hands_groups_off_and_preserves_results() {
        let (catalog, cluster, ds) = build(3);
        ingest_all(&cluster, &ds, 300);
        let baseline: Vec<QueryResult> = QUERIES.iter().map(|q| cluster.sql(q).unwrap()).collect();
        cluster.remove_worker(0).unwrap();
        let health = cluster.health();
        assert_eq!(health.workers[0].state, WorkerState::Removed);
        assert!(health.workers[0].hosted_gids.is_empty());
        assert!(health.lost_gids.is_empty());
        for (q, want) in QUERIES.iter().zip(&baseline) {
            assert_eq!(&cluster.sql(q).unwrap(), want, "{q} after remove_worker");
        }
        // Ingestion keeps working against the shrunk cluster.
        for tick in 300..320 {
            cluster
                .ingest_row(ds.timestamp(tick), &ds.row(tick))
                .unwrap();
        }
        cluster.flush().unwrap();
        assert!(!catalog.groups.is_empty());
        cluster.shutdown().unwrap();
    }

    #[test]
    fn moving_a_group_back_to_a_past_holder_is_refused() {
        let (_, cluster, ds) = build(2);
        ingest_all(&cluster, &ds, 300);
        let want = cluster.sql("SELECT COUNT_S(*) FROM Segment").unwrap();
        let gid = cluster.assignment()[0][0];
        cluster.move_group(gid, 0, 1).unwrap();
        assert_eq!(cluster.sql("SELECT COUNT_S(*) FROM Segment").unwrap(), want);
        // Worker 0's append-only log still contains the segments it
        // exported; importing the group again would duplicate them.
        let err = cluster.move_group(gid, 1, 0).unwrap_err();
        let message = format!("{err}");
        assert!(message.contains("previously held"), "{message}");
        assert_eq!(cluster.sql("SELECT COUNT_S(*) FROM Segment").unwrap(), want);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn remove_worker_never_returns_groups_to_their_donors() {
        let (_, cluster, ds) = build(2);
        ingest_all(&cluster, &ds, 300);
        let baseline: Vec<QueryResult> = QUERIES.iter().map(|q| cluster.sql(q).unwrap()).collect();
        let before = cluster.assignment();
        let added = cluster.add_worker().unwrap();
        let moved = cluster.assignment()[added].clone();
        assert!(!moved.is_empty());
        // Decommissioning the new worker must not hand any group back to
        // the worker it was taken from — that donor's log still contains
        // the group's segments, and a second copy would double aggregates.
        cluster.remove_worker(added).unwrap();
        let after = cluster.assignment();
        for &gid in &moved {
            let donor = before.iter().position(|gids| gids.contains(&gid)).unwrap();
            assert!(
                !after[donor].contains(&gid),
                "group {gid} returned to its donor {donor}"
            );
        }
        for (q, want) in QUERIES.iter().zip(&baseline) {
            assert_eq!(&cluster.sql(q).unwrap(), want, "{q} after grow+shrink");
        }
        cluster.shutdown().unwrap();
    }

    #[test]
    fn past_holder_guard_survives_restart() {
        let dir = mdb_testutil::TempDir::new("cluster-ever-held");
        let (catalog, default_cluster, ds) = build(2);
        drop(default_cluster);
        let mut config =
            ClusterConfig::with_compression(CompressionConfig::with_relative_bound(5.0));
        config.storage_dir = Some(dir.path().to_path_buf());
        config.bulk_write_size = 16;
        let registry = Arc::new(ModelRegistry::standard());
        let cluster = Cluster::start_with(
            Arc::clone(&catalog),
            Arc::clone(&registry),
            config.clone(),
            2,
        )
        .unwrap();
        ingest_all(&cluster, &ds, 300);
        let want = cluster.sql("SELECT COUNT_S(*) FROM Segment").unwrap();
        let gid = cluster.assignment()[0][0];
        cluster.move_group(gid, 0, 1).unwrap();
        cluster.shutdown().unwrap();
        // The donor's leftover segments survive the restart in its log, so
        // the manifest must carry the ever-held guard across it.
        let reopened = Cluster::start_with(catalog, registry, config, 2).unwrap();
        assert_eq!(
            reopened.sql("SELECT COUNT_S(*) FROM Segment").unwrap(),
            want
        );
        let err = reopened.move_group(gid, 1, 0).unwrap_err();
        let message = format!("{err}");
        assert!(message.contains("previously held"), "{message}");
        assert_eq!(
            reopened.sql("SELECT COUNT_S(*) FROM Segment").unwrap(),
            want
        );
        reopened.shutdown().unwrap();
    }

    #[test]
    fn slow_health_probe_marks_worker_slow_not_dead() {
        let (_, cluster, ds) = build(1);
        let mut batch = mdb_types::RowBatch::with_capacity(ds.n_series(), 300);
        for t in 0..300 {
            batch.push_row_with(ds.timestamp(t), |s| ds.value(s as u32 + 1, t));
        }
        cluster.ingest_batch(&batch).unwrap();
        // Probe with a zero timeout while the worker is still compressing
        // the batch: the probe times out, but a timeout is not proof of
        // death — the worker stays active and nothing is reported lost.
        let health = cluster.health_with_timeout(Duration::ZERO);
        assert_eq!(health.workers[0].state, WorkerState::Active);
        assert!(health.workers[0].probe_timed_out);
        assert!(health.lost_gids.is_empty());
        assert!(!health.is_degraded());
        // Once the worker drains, a normal probe succeeds.
        cluster.flush().unwrap();
        let settled = cluster.health();
        assert_eq!(settled.workers[0].state, WorkerState::Active);
        assert!(!settled.workers[0].probe_timed_out);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn remove_last_worker_is_refused() {
        let (_, cluster, ds) = build(1);
        ingest_all(&cluster, &ds, 50);
        assert!(cluster.remove_worker(0).is_err());
        // Still fully operational afterwards.
        let r = cluster.sql("SELECT COUNT_S(*) FROM Segment").unwrap();
        assert!(r.rows[0][0].as_i64().unwrap() > 0);
        cluster.shutdown().unwrap();
    }
}

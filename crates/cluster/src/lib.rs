//! The master/worker runtime (Figure 4, Section 3.1).
//!
//! The master partitions time series into groups (done beforehand by
//! `mdb-partitioner`), assigns each group to the worker with the most
//! available resources, and routes every tick of a group to *one* worker —
//! groups never span nodes, so neither ingestion nor queries shuffle data.
//! Queries follow Algorithm 5's annotations: the master rewrites the query,
//! every worker computes partial aggregates over its local store, and the
//! master merges and finalizes. That no-shuffle property is what produces
//! the near-linear scale-out of Figure 20.
//!
//! Workers are OS threads connected by **bounded** channels; each owns the
//! full single-node stack (group ingestors → segment store → query engine).
//! Ingestion is batch-oriented end-to-end: the master splits a columnar
//! [`RowBatch`] into per-group batches and ships whole batches, and a worker
//! that falls [`ClusterConfig::ingest_queue_depth`] batches behind blocks the
//! master (real backpressure) instead of queueing unboundedly.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, Sender};
use mdb_compression::{CompressionConfig, CompressionStats, GroupIngestor};
use mdb_models::ModelRegistry;
use mdb_partitioner::assign_workers;
use mdb_query::engine::PartialAggregates;
use mdb_query::{Query, QueryEngine, QueryResult, ScanPool, SelectItem};
use mdb_storage::{Catalog, DiskStore, DiskStoreOptions, MemoryStore, SegmentStore};
use mdb_types::{Gid, MdbError, Result, RowBatch, Timestamp, Value};

/// Cluster runtime configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Compression settings shared by every worker's group ingestors.
    pub compression: CompressionConfig,
    /// Maximum commands buffered per worker channel. The master's batched
    /// ingestion blocks once a worker falls this many batches behind — real
    /// backpressure instead of an unbounded queue.
    pub ingest_queue_depth: usize,
    /// Scan workers *per cluster worker* for the partial-aggregation phase
    /// (`0` = the machine's available parallelism). The default of 1 keeps
    /// each worker sequential, because the workers themselves already run
    /// concurrently during scatter/gather — raise it when a deployment has
    /// few workers and many cores. Results are bit-identical either way.
    pub query_parallelism: usize,
    /// When set, every worker persists its segments in an out-of-core
    /// [`mdb_storage::DiskStore`] under `<dir>/worker-<i>` instead of a
    /// resident [`MemoryStore`]; groups never span workers, so the
    /// per-worker logs partition the data with no overlap.
    pub storage_dir: Option<PathBuf>,
    /// Segments a disk-backed worker buffers before appending a block
    /// (Table 1's Bulk Write Size). Ignored for memory-backed workers.
    pub bulk_write_size: usize,
    /// Total block-cache byte budget across the cluster, split evenly over
    /// the workers (each worker's store gets `budget / n_workers`). `None`
    /// keeps every fetched block resident. Only meaningful with
    /// [`ClusterConfig::storage_dir`].
    pub memory_budget_bytes: Option<u64>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            compression: CompressionConfig::default(),
            ingest_queue_depth: 8,
            query_parallelism: 1,
            storage_dir: None,
            bulk_write_size: 50_000,
            memory_budget_bytes: None,
        }
    }
}

impl ClusterConfig {
    /// A config with the given compression settings and the default queue
    /// depth.
    pub fn with_compression(compression: CompressionConfig) -> Self {
        Self {
            compression,
            ..Self::default()
        }
    }
}

/// A batch routed to one worker: the columns of one group over a run of
/// ticks (rows where the whole group was in a gap are already dropped).
#[derive(Debug)]
struct GroupBatch {
    gid: Gid,
    batch: RowBatch,
}

enum Command {
    Ingest(Vec<GroupBatch>),
    Flush(Sender<Result<()>>),
    /// Run the partial-aggregation phase; replies with the partials and the
    /// worker-local wall time (used by the scale-out simulation).
    QueryPartial(Arc<Query>, Sender<Result<(PartialAggregates, Duration)>>),
    /// Run a listing query locally; replies with rows + wall time.
    QueryRows(Arc<Query>, Sender<Result<(QueryResult, Duration)>>),
    Stats(Sender<(CompressionStats, u64, usize)>),
    Shutdown,
}

struct Worker {
    sender: Sender<Command>,
    handle: Option<std::thread::JoinHandle<()>>,
    gids: Vec<Gid>,
}

/// A running ModelarDB+ cluster.
pub struct Cluster {
    catalog: Arc<Catalog>,
    workers: Vec<Worker>,
    /// gid → worker index (O(1) routing on the ingestion hot path).
    routing: HashMap<Gid, usize>,
    /// Per group (in catalog order): the row indexes of its member series,
    /// cached so routing a tick is O(values) instead of O(series²).
    group_row_indices: Vec<Vec<usize>>,
    /// Single-row batch backing [`Cluster::ingest_row`] (a batch of one on
    /// the [`Cluster::ingest_batch`] path), reused across calls so the
    /// compatibility path does not allocate a fresh column set per tick.
    scratch_row: Mutex<RowBatch>,
}

impl Cluster {
    /// Starts `n_workers` workers for the groups in `catalog` with the given
    /// compression settings and default runtime options; see
    /// [`Cluster::start_with`] for the full configuration surface.
    pub fn start(
        catalog: Arc<Catalog>,
        registry: Arc<ModelRegistry>,
        config: CompressionConfig,
        n_workers: usize,
    ) -> Result<Self> {
        Self::start_with(
            catalog,
            registry,
            ClusterConfig::with_compression(config),
            n_workers,
        )
    }

    /// Starts `n_workers` workers for the groups in `catalog`, assigning
    /// each group to the least-loaded worker. Worker command channels are
    /// bounded at [`ClusterConfig::ingest_queue_depth`], so ingestion blocks
    /// (backpressure) instead of queueing unboundedly when workers lag.
    pub fn start_with(
        catalog: Arc<Catalog>,
        registry: Arc<ModelRegistry>,
        config: ClusterConfig,
        n_workers: usize,
    ) -> Result<Self> {
        if n_workers == 0 {
            return Err(MdbError::Config("cluster needs at least one worker".into()));
        }
        if config.ingest_queue_depth == 0 {
            return Err(MdbError::Config(
                "ingest_queue_depth must be at least 1".into(),
            ));
        }
        let assignment = assign_workers(&catalog.groups, n_workers);
        let mut routing = HashMap::new();
        let mut per_worker_gids: Vec<Vec<Gid>> = vec![Vec::new(); n_workers];
        for (group, &worker) in catalog.groups.iter().zip(&assignment) {
            routing.insert(group.gid, worker);
            per_worker_gids[worker].push(group.gid);
        }
        let sizes: HashMap<Gid, usize> = catalog.groups.iter().map(|g| (g.gid, g.size())).collect();
        // Each worker's budget is an even share of the cluster-wide one.
        let per_worker_budget = config
            .memory_budget_bytes
            .map(|total| total / n_workers as u64);
        let mut workers = Vec::with_capacity(n_workers);
        for (index, gids) in per_worker_gids.into_iter().enumerate() {
            let (sender, receiver) = bounded::<Command>(config.ingest_queue_depth);
            let catalog_ref = Arc::clone(&catalog);
            let registry_ref = Arc::clone(&registry);
            let config_ref = config.compression.clone();
            let query_parallelism = config.query_parallelism;
            let gids_ref = gids.clone();
            // The store is built here (not in the worker thread) so disk
            // recovery errors surface from `start_with` instead of killing
            // a worker silently.
            let bounds_registry = Arc::clone(&registry);
            let bounds_sizes = sizes.clone();
            let value_bounds: mdb_storage::ValueBoundsFn = Arc::new(move |segment: &_| {
                mdb_models::segment_value_range(
                    &bounds_registry,
                    segment,
                    *bounds_sizes.get(&segment.gid)?,
                )
            });
            let store: Box<dyn SegmentStore> = match &config.storage_dir {
                Some(dir) => Box::new(DiskStore::open_with(
                    &dir.join(format!("worker-{index}")),
                    DiskStoreOptions {
                        bulk_write_size: config.bulk_write_size,
                        memory_budget_bytes: per_worker_budget,
                        value_bounds: Some(value_bounds),
                    },
                )?),
                None => Box::new(MemoryStore::with_value_bounds(value_bounds)),
            };
            let handle = std::thread::spawn(move || {
                worker_loop(
                    receiver,
                    catalog_ref,
                    registry_ref,
                    config_ref,
                    query_parallelism,
                    gids_ref,
                    store,
                );
            });
            workers.push(Worker {
                sender,
                handle: Some(handle),
                gids,
            });
        }
        let tid_to_row: HashMap<_, _> = catalog
            .series
            .iter()
            .enumerate()
            .map(|(i, m)| (m.tid, i))
            .collect();
        let group_row_indices = catalog
            .groups
            .iter()
            .map(|g| g.tids.iter().map(|t| tid_to_row[t]).collect())
            .collect();
        let scratch_row = Mutex::new(RowBatch::with_capacity(catalog.series.len(), 1));
        Ok(Self {
            catalog,
            workers,
            routing,
            group_row_indices,
            scratch_row,
        })
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The gids each worker owns.
    pub fn assignment(&self) -> Vec<Vec<Gid>> {
        self.workers.iter().map(|w| w.gids.clone()).collect()
    }

    fn worker_of(&self, gid: Gid) -> Option<usize> {
        self.routing.get(&gid).copied()
    }

    /// Ingests one full tick: `row[i]` belongs to the series with tid
    /// `catalog.series[i].tid`. This is a batch of one on the
    /// [`Cluster::ingest_batch`] path; bulk ingestion should build a
    /// [`RowBatch`] and call that directly.
    pub fn ingest_row(&self, timestamp: Timestamp, row: &[Option<Value>]) -> Result<()> {
        if row.len() != self.catalog.series.len() {
            return Err(MdbError::Ingestion(format!(
                "row has {} values for {} series",
                row.len(),
                self.catalog.series.len()
            )));
        }
        let mut batch = self.scratch_row.lock().expect("scratch batch poisoned");
        batch.clear();
        batch.push_row(timestamp, row);
        self.ingest_batch(&batch)
    }

    /// Ingests a columnar batch: column `i` of `batch` belongs to the series
    /// with tid `catalog.series[i].tid`. The master splits the batch into
    /// per-group column batches (dropping ticks a whole group missed) and
    /// routes each to the owning worker over its bounded channel — a send
    /// blocks once the worker is `ingest_queue_depth` batches behind, so a
    /// slow worker exerts backpressure instead of accumulating unbounded
    /// queues.
    pub fn ingest_batch(&self, batch: &RowBatch) -> Result<()> {
        if batch.n_series() != self.catalog.series.len() {
            return Err(MdbError::Ingestion(format!(
                "batch has {} columns for {} series",
                batch.n_series(),
                self.catalog.series.len()
            )));
        }
        let mut per_worker: Vec<Vec<GroupBatch>> =
            (0..self.workers.len()).map(|_| Vec::new()).collect();
        for (group, indices) in self.catalog.groups.iter().zip(&self.group_row_indices) {
            let view = batch.select(indices);
            let mut group_batch: Option<RowBatch> = None;
            for row in 0..view.len() {
                if view.row_all_gaps(row) {
                    continue; // a tick the whole group missed: a gap, not data
                }
                group_batch
                    .get_or_insert_with(|| RowBatch::with_capacity(indices.len(), view.len()))
                    .push_row_with(view.timestamp(row), |s| view.get(row, s));
            }
            if let Some(group_batch) = group_batch {
                let worker = self.worker_of(group.gid).unwrap();
                per_worker[worker].push(GroupBatch {
                    gid: group.gid,
                    batch: group_batch,
                });
            }
        }
        for (worker, batches) in self.workers.iter().zip(per_worker) {
            if !batches.is_empty() {
                worker
                    .sender
                    .send(Command::Ingest(batches))
                    .map_err(|_| MdbError::Ingestion("worker disconnected".into()))?;
            }
        }
        Ok(())
    }

    /// Flushes every worker's buffered ticks and stores.
    pub fn flush(&self) -> Result<()> {
        let mut replies = Vec::new();
        for worker in &self.workers {
            let (tx, rx) = bounded(1);
            worker
                .sender
                .send(Command::Flush(tx))
                .map_err(|_| MdbError::Ingestion("worker disconnected".into()))?;
            replies.push(rx);
        }
        for rx in replies {
            rx.recv()
                .map_err(|_| MdbError::Ingestion("worker died during flush".into()))??;
        }
        Ok(())
    }

    /// Executes a SQL query: scatter to all workers, gather, merge, finalize.
    pub fn sql(&self, text: &str) -> Result<QueryResult> {
        self.sql_timed(text).map(|(r, _)| r)
    }

    /// Like [`Cluster::sql`], but also reports each worker's local execution
    /// time. The slowest worker plus the merge is the cluster latency — the
    /// quantity the scale-out experiment of Figure 20 tracks (no shuffling
    /// means per-worker times are independent of the cluster size).
    pub fn sql_timed(&self, text: &str) -> Result<(QueryResult, Vec<Duration>)> {
        let query = Arc::new(mdb_query::parse(text)?);
        let is_aggregate = query
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Agg { .. }));
        if is_aggregate {
            let mut replies = Vec::new();
            for worker in &self.workers {
                let (tx, rx) = bounded(1);
                worker
                    .sender
                    .send(Command::QueryPartial(Arc::clone(&query), tx))
                    .map_err(|_| MdbError::Query("worker disconnected".into()))?;
                replies.push(rx);
            }
            let mut partials = Vec::new();
            let mut times = Vec::new();
            for rx in replies {
                let (partial, elapsed) = rx
                    .recv()
                    .map_err(|_| MdbError::Query("worker died during query".into()))??;
                partials.push(partial);
                times.push(elapsed);
            }
            let mut result = QueryEngine::finalize_aggregates(&query, partials)?;
            QueryEngine::apply_order_limit(&mut result, &query)?;
            Ok((result, times))
        } else {
            // Listing: run without ORDER/LIMIT on workers, apply at master.
            let mut local = (*query).clone();
            local.order_by = None;
            local.limit = None;
            let local = Arc::new(local);
            let mut replies = Vec::new();
            for worker in &self.workers {
                let (tx, rx) = bounded(1);
                worker
                    .sender
                    .send(Command::QueryRows(Arc::clone(&local), tx))
                    .map_err(|_| MdbError::Query("worker disconnected".into()))?;
                replies.push(rx);
            }
            let mut merged: Option<QueryResult> = None;
            let mut times = Vec::new();
            for rx in replies {
                let (rows, elapsed) = rx
                    .recv()
                    .map_err(|_| MdbError::Query("worker died during query".into()))??;
                times.push(elapsed);
                match &mut merged {
                    None => merged = Some(rows),
                    Some(m) => m.rows.extend(rows.rows),
                }
            }
            let mut result = merged.unwrap_or_default();
            QueryEngine::apply_order_limit(&mut result, &query)?;
            Ok((result, times))
        }
    }

    /// Measures each worker's local execution time for an aggregate query
    /// with the workers queried **one at a time**, so the measurements are
    /// free of CPU contention between worker threads. This is the
    /// measurement behind the simulated scale-out of Figure 20: because
    /// groups never span nodes and queries never shuffle, a real cluster's
    /// latency is `max(worker times) + merge`, and per-worker times are
    /// independent of how many other nodes exist.
    pub fn worker_times_isolated(&self, text: &str) -> Result<Vec<Duration>> {
        let query = Arc::new(mdb_query::parse(text)?);
        let mut times = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let (tx, rx) = bounded(1);
            worker
                .sender
                .send(Command::QueryPartial(Arc::clone(&query), tx))
                .map_err(|_| MdbError::Query("worker disconnected".into()))?;
            let (_, elapsed) = rx
                .recv()
                .map_err(|_| MdbError::Query("worker died during query".into()))??;
            times.push(elapsed);
        }
        Ok(times)
    }

    /// Merged compression statistics, total logical bytes, and segment count
    /// across all workers.
    pub fn stats(&self) -> Result<(CompressionStats, u64, usize)> {
        let mut merged = CompressionStats::default();
        let mut bytes = 0;
        let mut segments = 0;
        for worker in &self.workers {
            let (tx, rx) = bounded(1);
            worker
                .sender
                .send(Command::Stats(tx))
                .map_err(|_| MdbError::Query("worker disconnected".into()))?;
            let (stats, b, s) = rx
                .recv()
                .map_err(|_| MdbError::Query("worker died".into()))?;
            merged.merge(&stats);
            bytes += b;
            segments += s;
        }
        Ok((merged, bytes, segments))
    }

    /// Stops all workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for worker in &self.workers {
            let _ = worker.sender.send(Command::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One worker: the per-node stack of Figure 4. The local store (built by
/// `start_with`: memory-resident, or out-of-core disk with a share of the
/// cluster's memory budget) maintains a value-bounded zone map, so every
/// worker prunes its own segment runs — and, on disk, skips whole blocks
/// before fetching them — before computing partials; the scatter/gather
/// path reuses exactly the single-node pruned scan.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    receiver: Receiver<Command>,
    catalog: Arc<Catalog>,
    registry: Arc<ModelRegistry>,
    config: CompressionConfig,
    query_parallelism: usize,
    gids: Vec<Gid>,
    mut store: Box<dyn SegmentStore>,
) {
    // Per-worker persistent scan pool (opt-in: one worker per node is the
    // default because nodes already scan concurrently during scatter/gather).
    let scan_pool = (query_parallelism != 1).then(|| {
        ScanPool::new(
            Arc::clone(&catalog),
            Arc::clone(&registry),
            query_parallelism,
        )
    });
    let mut ingestors: Vec<GroupIngestor> = Vec::new();
    let mut gid_index: HashMap<Gid, usize> = HashMap::new();
    for gid in &gids {
        let group = catalog
            .group(*gid)
            .expect("assigned gid must exist")
            .clone();
        let scaling: Vec<f64> = group.tids.iter().map(|t| catalog.scaling_of(*t)).collect();
        let ingestor = GroupIngestor::new(group, scaling, Arc::clone(&registry), config.clone())
            .expect("valid group");
        gid_index.insert(*gid, ingestors.len());
        ingestors.push(ingestor);
    }
    let mut failure: Option<MdbError> = None;
    while let Ok(command) = receiver.recv() {
        match command {
            Command::Ingest(batches) => {
                for group_batch in batches {
                    let Some(&idx) = gid_index.get(&group_batch.gid) else {
                        continue;
                    };
                    match ingestors[idx].push_batch(group_batch.batch.view()) {
                        Ok(segments) => {
                            for segment in segments {
                                if let Err(e) = store.insert(segment) {
                                    failure = Some(e);
                                }
                            }
                        }
                        Err(e) => failure = Some(e),
                    }
                }
            }
            Command::Flush(reply) => {
                let mut result = Ok(());
                for ingestor in &mut ingestors {
                    match ingestor.flush() {
                        Ok(segments) => {
                            for segment in segments {
                                if let Err(e) = store.insert(segment) {
                                    result = Err(e);
                                }
                            }
                        }
                        Err(e) => result = Err(e),
                    }
                }
                if let Err(e) = store.flush() {
                    result = Err(e);
                }
                if let Some(e) = failure.take() {
                    result = Err(e);
                }
                let _ = reply.send(result);
            }
            Command::QueryPartial(query, reply) => {
                let start = Instant::now();
                let mut engine = QueryEngine::new(&catalog, &registry, store.as_ref())
                    .with_parallelism(query_parallelism);
                if let Some(pool) = &scan_pool {
                    engine = engine.with_scan_pool(pool);
                }
                let result = engine
                    .aggregate_partial(&query)
                    .map(|p| (p, start.elapsed()));
                let _ = reply.send(result);
            }
            Command::QueryRows(query, reply) => {
                let start = Instant::now();
                let engine = QueryEngine::new(&catalog, &registry, store.as_ref());
                let result = engine.listing(&query).map(|r| (r, start.elapsed()));
                let _ = reply.send(result);
            }
            Command::Stats(reply) => {
                let mut stats = CompressionStats::default();
                for ingestor in &ingestors {
                    stats.merge(ingestor.stats());
                }
                let _ = reply.send((stats, store.logical_bytes(), store.len()));
            }
            Command::Shutdown => {
                // Best-effort drain so a disk-backed worker's pending ticks
                // and write buffer become durable across a shutdown→restart
                // cycle (a volatile worker loses its store anyway; errors
                // cannot be reported — the reply channels are gone).
                for ingestor in &mut ingestors {
                    if let Ok(segments) = ingestor.flush() {
                        for segment in segments {
                            let _ = store.insert(segment);
                        }
                    }
                }
                let _ = store.flush();
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdb_partitioner::{partition, CorrelationSpec};
    use mdb_types::GroupMeta;

    /// Builds a catalog + cluster from the EP-like tiny data set.
    fn build(n_workers: usize) -> (Arc<Catalog>, Cluster, mdb_datagen::Dataset) {
        let ds = mdb_datagen::ep(5, mdb_datagen::Scale::tiny()).unwrap();
        let parts = partition(
            &ds.series,
            &ds.dimensions,
            &ds.correlation_spec(),
            &ds.sources,
        )
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.dimensions = ds.dimensions.clone();
        for (i, group_tids) in parts.groups.iter().enumerate() {
            let gid = (i + 1) as Gid;
            for (j, tid) in group_tids.iter().enumerate() {
                let mut meta = ds.series.iter().find(|m| m.tid == *tid).unwrap().clone();
                meta.gid = gid;
                meta.scaling = parts.scaling[i][j];
                catalog.series.push(meta);
            }
            catalog.groups.push(GroupMeta {
                gid,
                tids: group_tids.clone(),
                sampling_interval: 60_000,
            });
        }
        catalog.series.sort_by_key(|m| m.tid);
        let registry = Arc::new(ModelRegistry::standard());
        catalog.model_names = registry.names().iter().map(|s| s.to_string()).collect();
        let catalog = Arc::new(catalog);
        let config = CompressionConfig::with_relative_bound(5.0);
        let cluster = Cluster::start(Arc::clone(&catalog), registry, config, n_workers).unwrap();
        (catalog, cluster, ds)
    }

    fn ingest_all(cluster: &Cluster, ds: &mdb_datagen::Dataset, ticks: u64) {
        for tick in 0..ticks {
            cluster
                .ingest_row(ds.timestamp(tick), &ds.row(tick))
                .unwrap();
        }
        cluster.flush().unwrap();
    }

    #[test]
    fn batched_ingestion_matches_row_at_a_time() {
        let (_, by_row, ds) = build(2);
        ingest_all(&by_row, &ds, 300);
        // Batch path with a deliberately tiny queue depth so the test also
        // exercises backpressure (sends block until the workers drain).
        let (catalog, default_cluster, _) = build(2);
        drop(default_cluster);
        let config = ClusterConfig {
            compression: CompressionConfig::with_relative_bound(5.0),
            ingest_queue_depth: 1,
            ..ClusterConfig::default()
        };
        let by_batch =
            Cluster::start_with(catalog, Arc::new(ModelRegistry::standard()), config, 2).unwrap();
        let mut batch = mdb_types::RowBatch::with_capacity(ds.n_series(), 64);
        let mut tick = 0u64;
        while tick < 300 {
            batch.clear();
            for t in tick..(tick + 64).min(300) {
                batch.push_row_with(ds.timestamp(t), |s| ds.value(s as u32 + 1, t));
            }
            by_batch.ingest_batch(&batch).unwrap();
            tick += 64;
        }
        by_batch.flush().unwrap();
        for q in [
            "SELECT COUNT_S(*) FROM Segment",
            "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
        ] {
            let a = by_row.sql(q).unwrap();
            let b = by_batch.sql(q).unwrap();
            assert_eq!(a.rows, b.rows, "{q}");
        }
        let (sa, _, _) = by_row.stats().unwrap();
        let (sb, _, _) = by_batch.stats().unwrap();
        assert_eq!(sa.rows, sb.rows);
        assert_eq!(sa.data_points, sb.data_points);
        by_row.shutdown();
        by_batch.shutdown();
    }

    #[test]
    fn disk_backed_workers_answer_like_memory_workers_and_survive_restart() {
        let dir = std::env::temp_dir().join(format!("mdb-cluster-disk-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let (_, by_memory, ds) = build(2);
        ingest_all(&by_memory, &ds, 300);
        let (catalog, default_cluster, _) = build(2);
        drop(default_cluster);
        // Disk-backed workers with a deliberately tiny shared budget: every
        // worker gets budget / n_workers for its block cache, and a small
        // bulk write size produces multiple blocks per worker.
        let config = ClusterConfig {
            compression: CompressionConfig::with_relative_bound(5.0),
            storage_dir: Some(dir.clone()),
            bulk_write_size: 16,
            memory_budget_bytes: Some(64 * 1024),
            ..ClusterConfig::default()
        };
        let registry = Arc::new(ModelRegistry::standard());
        let by_disk = Cluster::start_with(
            Arc::clone(&catalog),
            Arc::clone(&registry),
            config.clone(),
            2,
        )
        .unwrap();
        ingest_all(&by_disk, &ds, 300);
        let queries = [
            "SELECT COUNT_S(*) FROM Segment",
            "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
        ];
        // Memory and disk stores scan in different (each deterministic)
        // orders, so float sums may differ in association: compare
        // tolerantly across store kinds. Bit-identity is guaranteed — and
        // asserted below — only between runs of the *same* store.
        let assert_close = |a: &QueryResult, b: &QueryResult, label: &str| {
            assert_eq!(a.rows.len(), b.rows.len(), "{label}");
            for (x, y) in a.rows.iter().flatten().zip(b.rows.iter().flatten()) {
                match (x.as_f64(), y.as_f64()) {
                    (Some(x), Some(y)) => {
                        assert!(
                            (x - y).abs() <= 1e-6 * y.abs().max(1.0),
                            "{label}: {x} vs {y}"
                        )
                    }
                    _ => assert_eq!(x, y, "{label}"),
                }
            }
        };
        for q in queries {
            assert_close(&by_memory.sql(q).unwrap(), &by_disk.sql(q).unwrap(), q);
        }
        // Ingest a tail of ticks WITHOUT an explicit flush: shutdown must
        // drain the ingestors and write buffers so nothing is lost.
        for tick in 300..350 {
            by_disk
                .ingest_row(ds.timestamp(tick), &ds.row(tick))
                .unwrap();
        }
        by_disk.shutdown();
        for tick in 300..350 {
            by_memory
                .ingest_row(ds.timestamp(tick), &ds.row(tick))
                .unwrap();
        }
        by_memory.flush().unwrap();
        // Restarting over the same directory recovers every worker's log,
        // including the tail made durable by the shutdown drain.
        let reopened = Cluster::start_with(catalog, registry, config, 2).unwrap();
        for q in queries {
            assert_close(
                &by_memory.sql(q).unwrap(),
                &reopened.sql(q).unwrap(),
                &format!("{q} after restart"),
            );
        }
        // Same store state, same scan order: a second reopened run is
        // bit-identical to the first.
        let again: Vec<QueryResult> = queries.iter().map(|q| reopened.sql(q).unwrap()).collect();
        for (q, want) in queries.iter().zip(&again) {
            assert_eq!(&reopened.sql(q).unwrap(), want, "{q} re-run");
        }
        reopened.shutdown();
        by_memory.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_queue_depth_rejected() {
        let catalog = Arc::new(Catalog::new());
        let registry = Arc::new(ModelRegistry::standard());
        let config = ClusterConfig {
            ingest_queue_depth: 0,
            ..ClusterConfig::default()
        };
        assert!(Cluster::start_with(catalog, registry, config, 1).is_err());
    }

    #[test]
    fn single_worker_end_to_end() {
        let (_, cluster, ds) = build(1);
        ingest_all(&cluster, &ds, 300);
        let r = cluster.sql("SELECT COUNT_S(*) FROM Segment").unwrap();
        let count = r.rows[0][0].as_i64().unwrap();
        assert_eq!(count as u64, ds.count_data_points(300));
        cluster.shutdown();
    }

    #[test]
    fn results_are_identical_across_cluster_sizes() {
        let queries = [
            "SELECT COUNT_S(*) FROM Segment",
            "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
            "SELECT Entity, AVG_S(*) FROM Segment GROUP BY Entity ORDER BY Entity",
            "SELECT Tid, CUBE_SUM_DAY(*) FROM Segment WHERE Tid IN (1, 2) GROUP BY Tid",
        ];
        let (_, one, ds) = build(1);
        ingest_all(&one, &ds, 300);
        let baseline: Vec<QueryResult> = queries.iter().map(|q| one.sql(q).unwrap()).collect();
        one.shutdown();
        for n in [2, 3] {
            let (_, cluster, ds) = build(n);
            ingest_all(&cluster, &ds, 300);
            for (q, expected) in queries.iter().zip(&baseline) {
                let got = cluster.sql(q).unwrap();
                assert_eq!(got.columns, expected.columns, "{q}");
                assert_eq!(got.rows.len(), expected.rows.len(), "{q}");
                for (a, b) in got.rows.iter().zip(&expected.rows) {
                    for (x, y) in a.iter().zip(b) {
                        match (x.as_f64(), y.as_f64()) {
                            (Some(x), Some(y)) => {
                                assert!((x - y).abs() <= 1e-6 * y.abs().max(1.0), "{q}: {x} vs {y}")
                            }
                            _ => assert_eq!(x, y, "{q}"),
                        }
                    }
                }
            }
            cluster.shutdown();
        }
    }

    #[test]
    fn groups_never_span_workers() {
        let (catalog, cluster, _) = build(3);
        let assignment = cluster.assignment();
        let mut seen = Vec::new();
        for gids in &assignment {
            for gid in gids {
                assert!(!seen.contains(gid), "gid {gid} on two workers");
                seen.push(*gid);
            }
        }
        assert_eq!(seen.len(), catalog.groups.len());
        cluster.shutdown();
    }

    #[test]
    fn listing_queries_merge_rows_with_order_and_limit() {
        let (_, cluster, ds) = build(2);
        ingest_all(&cluster, &ds, 200);
        let ts = ds.timestamp(50);
        let r = cluster
            .sql(&format!(
                "SELECT Tid, TS, Value FROM DataPoint WHERE TS = {ts} ORDER BY Tid LIMIT 4"
            ))
            .unwrap();
        assert!(r.rows.len() <= 4);
        let tids: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
        let mut sorted = tids.clone();
        sorted.sort();
        assert_eq!(tids, sorted);
        cluster.shutdown();
    }

    #[test]
    fn timed_queries_report_per_worker_latency() {
        let (_, cluster, ds) = build(2);
        ingest_all(&cluster, &ds, 200);
        let (_, times) = cluster.sql_timed("SELECT COUNT_S(*) FROM Segment").unwrap();
        assert_eq!(times.len(), 2);
        cluster.shutdown();
    }

    #[test]
    fn stats_merge_across_workers() {
        let (_, cluster, ds) = build(2);
        ingest_all(&cluster, &ds, 300);
        let (stats, bytes, segments) = cluster.stats().unwrap();
        assert_eq!(stats.data_points, ds.count_data_points(300));
        assert!(bytes > 0);
        assert!(segments > 0);
        assert_eq!(stats.segments as usize, segments);
        cluster.shutdown();
    }

    #[test]
    fn zero_workers_rejected() {
        let catalog = Arc::new(Catalog::new());
        let registry = Arc::new(ModelRegistry::standard());
        assert!(Cluster::start(catalog, registry, CompressionConfig::default(), 0).is_err());
    }

    #[test]
    fn bad_sql_propagates_errors() {
        let (_, cluster, ds) = build(2);
        ingest_all(&cluster, &ds, 50);
        assert!(cluster.sql("SELECT NOPE(*) FROM Segment").is_err());
        assert!(cluster
            .sql("SELECT COUNT_S(*) FROM Segment WHERE Altitude = 'x'")
            .is_err());
        cluster.shutdown();
    }

    #[test]
    fn correlation_spec_none_reproduces_modelardb_v1() {
        // With no correlation hints every series is its own group — the
        // ModelarDBv1 baseline of the evaluation.
        let ds = mdb_datagen::ep(5, mdb_datagen::Scale::tiny()).unwrap();
        let parts = partition(
            &ds.series,
            &ds.dimensions,
            &CorrelationSpec::none(),
            &ds.sources,
        )
        .unwrap();
        assert_eq!(parts.groups.len(), ds.n_series());
    }
}

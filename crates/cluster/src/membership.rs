//! Cluster membership: the persisted placement manifest and the elastic
//! [`Cluster::add_worker`] / [`Cluster::remove_worker`] operations.
//!
//! Disk-backed clusters write `cluster.meta` (atomically, via temp file +
//! rename) beside the worker directories whenever the placement changes —
//! at start, on a death declaration, after a handoff, and on membership
//! changes. A restart adopts the manifest instead of recomputing the
//! assignment, so groups are served from whichever worker's log actually
//! has them after failovers and handoffs. Memory-backed clusters skip all
//! of this: their state dies with the process anyway.

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

use mdb_partitioner::group_load;
use mdb_storage::Catalog;
use mdb_types::{Gid, MdbError, Result};

use crate::{Cluster, ClusterConfig, Topology, WorkerState};

/// File name of the placement manifest inside
/// [`ClusterConfig::storage_dir`](mdb_query::CommonOptions::storage_dir).
const MANIFEST_FILE: &str = "cluster.meta";
const MANIFEST_HEADER: &str = "mdb-cluster-manifest v1";

/// A parsed placement manifest.
pub(crate) struct Manifest {
    /// gid → holder worker indices, primary first (empty = group lost).
    pub holders: HashMap<Gid, Vec<usize>>,
    /// Decommissioned slot indices (not respawned on restart).
    pub removed: Vec<usize>,
    /// Per slot: every gid whose segments may still sit in that slot's
    /// append-only log — current holds plus leftovers from handoffs and
    /// deaths. Restored into [`Topology::ever_held`] so a group is never
    /// handed back onto leftover segments, even across restarts.
    pub ever_held: HashMap<usize, Vec<Gid>>,
}

/// Loads and validates the manifest for a disk-backed cluster, if one was
/// written by a previous life of the directory. Returns `None` when the
/// cluster is memory-backed or the directory is fresh.
pub(crate) fn load_manifest(
    config: &ClusterConfig,
    catalog: &Catalog,
    n_workers: usize,
) -> Result<Option<Manifest>> {
    let Some(dir) = &config.storage_dir else {
        return Ok(None);
    };
    let path = dir.join(MANIFEST_FILE);
    if !path.exists() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| MdbError::Config(format!("cannot read cluster manifest: {e}")))?;
    let manifest = parse_manifest(&text)?;
    // The manifest must describe this exact cluster: same slot count (slot
    // indices name on-disk worker directories), same replication intent,
    // same group universe.
    if manifest.slots != n_workers {
        return Err(MdbError::Config(format!(
            "cluster manifest describes {} worker slots but {n_workers} were requested; \
             restart the cluster with the slot count it grew to",
            manifest.slots
        )));
    }
    if manifest.replication != config.replication_factor {
        return Err(MdbError::Config(format!(
            "cluster manifest has replication factor {} but the config asks for {}",
            manifest.replication, config.replication_factor
        )));
    }
    if manifest
        .holders
        .values()
        .flatten()
        .chain(manifest.ever_held.keys())
        .any(|&i| i >= n_workers)
    {
        return Err(MdbError::Config(
            "cluster manifest names a worker slot beyond its own slot count".into(),
        ));
    }
    let mut manifest_gids: Vec<Gid> = manifest.holders.keys().copied().collect();
    manifest_gids.sort_unstable();
    let mut catalog_gids: Vec<Gid> = catalog.groups.iter().map(|g| g.gid).collect();
    catalog_gids.sort_unstable();
    if manifest_gids != catalog_gids {
        return Err(MdbError::Config(
            "cluster manifest's groups do not match the catalog".into(),
        ));
    }
    Ok(Some(Manifest {
        holders: manifest.holders,
        removed: manifest.removed,
        ever_held: manifest.ever_held,
    }))
}

struct ParsedManifest {
    slots: usize,
    replication: usize,
    holders: HashMap<Gid, Vec<usize>>,
    removed: Vec<usize>,
    ever_held: HashMap<usize, Vec<Gid>>,
}

fn parse_manifest(text: &str) -> Result<ParsedManifest> {
    let bad = |what: &str| MdbError::Config(format!("malformed cluster manifest: {what}"));
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(bad("unknown header"));
    }
    let mut slots = None;
    let mut replication = None;
    let mut removed = Vec::new();
    let mut holders = HashMap::new();
    let mut ever_held = HashMap::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("slots") => {
                slots = Some(
                    parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("slots"))?,
                );
            }
            Some("replication") => {
                replication = Some(
                    parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("replication"))?,
                );
            }
            Some("removed") => {
                let list = parts.next().ok_or_else(|| bad("removed"))?;
                if list != "-" {
                    for item in list.split(',') {
                        removed.push(item.parse().map_err(|_| bad("removed index"))?);
                    }
                }
            }
            Some("group") => {
                let gid: Gid = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("group gid"))?;
                let list = parts.next().ok_or_else(|| bad("group holders"))?;
                let mut indices = Vec::new();
                if list != "-" {
                    for item in list.split(',') {
                        indices.push(item.parse().map_err(|_| bad("holder index"))?);
                    }
                }
                holders.insert(gid, indices);
            }
            Some("held") => {
                let slot: usize = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("held slot"))?;
                let list = parts.next().ok_or_else(|| bad("held gids"))?;
                let mut gids = Vec::new();
                if list != "-" {
                    for item in list.split(',') {
                        gids.push(item.parse().map_err(|_| bad("held gid"))?);
                    }
                }
                ever_held.insert(slot, gids);
            }
            _ => return Err(bad("unknown line")),
        }
    }
    Ok(ParsedManifest {
        slots: slots.ok_or_else(|| bad("missing slots"))?,
        replication: replication.ok_or_else(|| bad("missing replication"))?,
        holders,
        removed,
        ever_held,
    })
}

fn render_manifest(topo: &Topology, replication: usize) -> String {
    let mut out = String::new();
    out.push_str(MANIFEST_HEADER);
    out.push('\n');
    out.push_str(&format!("slots {}\n", topo.workers.len()));
    out.push_str(&format!("replication {replication}\n"));
    let removed: Vec<String> = topo
        .workers
        .iter()
        .enumerate()
        .filter(|(_, w)| w.state == WorkerState::Removed)
        .map(|(i, _)| i.to_string())
        .collect();
    if removed.is_empty() {
        out.push_str("removed -\n");
    } else {
        out.push_str(&format!("removed {}\n", removed.join(",")));
    }
    let mut gids: Vec<Gid> = topo.holders.keys().copied().collect();
    gids.sort_unstable();
    for gid in gids {
        let holders = &topo.holders[&gid];
        if holders.is_empty() {
            out.push_str(&format!("group {gid} -\n"));
        } else {
            let list: Vec<String> = holders.iter().map(|h| h.to_string()).collect();
            out.push_str(&format!("group {gid} {}\n", list.join(",")));
        }
    }
    // Every gid a slot ever held: its log keeps their segments forever
    // (append-only), so the handoff guard must survive restarts with them.
    for (slot, held) in topo.ever_held.iter().enumerate() {
        if held.is_empty() {
            out.push_str(&format!("held {slot} -\n"));
        } else {
            let mut held: Vec<Gid> = held.iter().copied().collect();
            held.sort_unstable();
            let list: Vec<String> = held.iter().map(|g| g.to_string()).collect();
            out.push_str(&format!("held {slot} {}\n", list.join(",")));
        }
    }
    out
}

/// Writes `content` to `dir/cluster.meta` atomically (temp file + rename),
/// so a crash mid-write leaves either the old or the new manifest, never a
/// torn one.
fn write_manifest(dir: &Path, content: &str) -> std::io::Result<()> {
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(content.as_bytes())?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, dir.join(MANIFEST_FILE))
}

impl Cluster {
    /// Persists the placement for disk-backed clusters (best effort: the
    /// cluster keeps running on a write failure; the next placement change
    /// retries).
    pub(crate) fn persist_manifest(&self, topo: &Topology) {
        if let Some(dir) = &self.config.storage_dir {
            let content = render_manifest(topo, self.config.replication_factor);
            let _ = write_manifest(dir, &content);
        }
    }

    /// Total ingest load currently placed on worker `index` (each held
    /// copy charges the group's full load, matching
    /// [`mdb_partitioner::assign_replicas`]).
    fn worker_load(&self, topo: &Topology, index: usize) -> f64 {
        topo.holders
            .iter()
            .filter(|(_, holders)| holders.contains(&index))
            .map(|(&gid, _)| self.load_of(gid))
            .sum()
    }

    fn load_of(&self, gid: Gid) -> f64 {
        self.catalog
            .groups
            .iter()
            .find(|g| g.gid == gid)
            .map(group_load)
            .unwrap_or(0.0)
    }

    /// Grows the cluster by one worker slot and rebalances: groups move
    /// from the most-loaded workers to the new one (via the drain → ship →
    /// atomic-reroute handoff of the handoff module) until it carries
    /// roughly an even share — at least one group, as long as any exist.
    /// Returns the new worker's slot index.
    ///
    /// The new worker's block-cache share is
    /// [`ClusterConfig::memory_budget_bytes`](mdb_query::CommonOptions::memory_budget_bytes)
    /// divided by the *new* slot
    /// count; existing workers keep the share they were spawned with (their
    /// caches are not resized in place), so the cluster-wide cache budget
    /// can exceed the configured total until the next restart re-splits it
    /// evenly.
    pub fn add_worker(&self) -> Result<usize> {
        let mut topo = self.topo_write();
        let index = topo.workers.len();
        let budget_share = self
            .config
            .memory_budget_bytes
            .map(|total| total / (index as u64 + 1));
        let worker = crate::spawn_worker(
            index,
            Vec::new(),
            &self.catalog,
            &self.registry,
            &self.config,
            &self.sizes,
            budget_share,
        )?;
        topo.workers.push(worker);
        topo.ever_held.push(std::collections::HashSet::new());
        // Rebalance: repeatedly take the heaviest movable group from the
        // most-loaded worker while doing so narrows the gap. The first move
        // is forced (with the donor's lightest group) so growing an
        // imbalanced-but-small cluster always shifts work to the new slot.
        let mut moved_any = false;
        loop {
            let my_load = self.worker_load(&topo, index);
            let Some((donor, donor_load)) = topo
                .active()
                .into_iter()
                .filter(|&i| i != index)
                .map(|i| (i, self.worker_load(&topo, i)))
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            else {
                break;
            };
            // Movable: held by the donor, never on the new slot (a fresh
            // slot has an empty ever-held set; the check keeps the
            // no-leftover-duplication invariant explicit).
            let mut movable: Vec<(Gid, f64)> = topo
                .holders
                .iter()
                .filter(|(&gid, holders)| {
                    holders.contains(&donor) && !topo.ever_held[index].contains(&gid)
                })
                .map(|(&gid, _)| (gid, self.load_of(gid)))
                .collect();
            if movable.is_empty() {
                break;
            }
            movable.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let improving = movable
                .iter()
                .find(|(_, load)| donor_load - my_load > *load)
                .copied();
            let (gid, _) = match improving {
                Some(pick) => pick,
                // No balance-improving move left: force the lightest group
                // over once so the new worker is never left idle.
                None if !moved_any => *movable.last().unwrap(),
                None => break,
            };
            self.move_copy(&mut topo, gid, donor, index)?;
            moved_any = true;
        }
        self.persist_manifest(&topo);
        Ok(index)
    }

    /// Decommissions worker `index`: every group copy it holds is handed
    /// off to the least-loaded active worker that does not already hold the
    /// group, the worker drains and stops, and its slot is marked
    /// [`WorkerState::Removed`] (never respawned, so slot indices stay
    /// stable). Fails without moving anything if some group would have no
    /// eligible target.
    pub fn remove_worker(&self, index: usize) -> Result<()> {
        let mut topo = self.topo_write();
        if index >= topo.workers.len() {
            return Err(MdbError::Config(format!("no worker slot {index}")));
        }
        if topo.workers[index].state != WorkerState::Active {
            return Err(MdbError::Config(format!(
                "worker {index} is {} and cannot be removed",
                topo.workers[index].state
            )));
        }
        let hosted = topo.hosted_gids(index);
        // Pre-check every move before doing any: each group needs an active
        // target that never held it — a past holder's append-only log still
        // contains the segments it exported, and importing the group again
        // would duplicate them (ever_held is a superset of the current
        // holders, so this also excludes live copies).
        let eligible = |topo: &Topology, gid: Gid| -> Option<usize> {
            topo.active()
                .into_iter()
                .filter(|&i| i != index && !topo.ever_held[i].contains(&gid))
                .min_by(|&a, &b| {
                    self.worker_load(topo, a)
                        .total_cmp(&self.worker_load(topo, b))
                        .then(a.cmp(&b))
                })
        };
        for &gid in &hosted {
            if eligible(&topo, gid).is_none() {
                return Err(MdbError::Config(format!(
                    "cannot remove worker {index}: no other active worker can take group {gid} \
                     (every candidate holds, or previously held, a copy)"
                )));
            }
        }
        for &gid in &hosted {
            let target = eligible(&topo, gid).expect("pre-checked");
            self.move_copy(&mut topo, gid, index, target)?;
        }
        // Drain and stop the now-empty worker, keeping its slot reserved.
        let worker = &mut topo.workers[index];
        if let Some(sender) = worker.sender.take() {
            let (tx, rx) = crossbeam_channel::bounded(1);
            if sender.send(crate::Command::Shutdown(tx)).is_ok() {
                match rx.recv() {
                    Ok(Ok(())) | Err(_) => {}
                    Ok(Err(e)) => {
                        // Its groups were already shipped; a failed final
                        // drain only concerns leftover (exported) state.
                        worker.note = Some(format!("drain on removal failed: {e}"));
                    }
                }
            }
        }
        let worker = &mut topo.workers[index];
        if let Some(handle) = worker.handle.take() {
            let _ = handle.join();
        }
        worker.state = WorkerState::Removed;
        if worker.note.is_none() {
            worker.note = Some("removed".into());
        }
        self.persist_manifest(&topo);
        Ok(())
    }
}

//! Group handoff: shipping one group's copy from a source worker to a
//! target worker with an atomic routing flip.
//!
//! The whole exchange runs under the master's topology **write** lock, so
//! no batch can be routed while a group is mid-flight: the source drains
//! the group's ingestor, flushes its store, and exports the group's
//! segment runs in its deterministic per-group scan order; the target
//! builds a fresh ingestor, appends the runs (the disk store cuts blocks
//! at run boundaries, mirroring the source's block structure), and flushes;
//! only then does the holder list swap source for target. Because a
//! group's per-group scan order survives the trip, query results are
//! bit-identical before and after the handoff — and after a restart that
//! reads the shipped log.
//!
//! Append-only stores cannot delete, so the exported segments stay in the
//! source's log; primary-scoped queries and statistics simply never touch
//! them again. Handing the same group *back* to a worker whose log still
//! has such leftovers would double its segments, so the topology tracks
//! every gid a slot *ever* held ([`Topology::ever_held`], persisted in the
//! manifest because the leftovers survive restarts too): membership
//! operations draw targets from outside that set, and [`Cluster::move_group`]
//! rejects past holders outright.

use crossbeam_channel::bounded;
use mdb_types::{Gid, MdbError, Result};

use crate::{Cluster, Command, Topology};

impl Cluster {
    /// Moves one copy of `gid` from worker `from` to worker `to`, flipping
    /// the holder entry in place (a primary stays primary, a replica stays
    /// a replica). Both workers must be active; the target must not
    /// already hold the group. Takes the topology write lock — ingestion
    /// and queries wait until the handoff committed or failed whole.
    pub fn move_group(&self, gid: Gid, from: usize, to: usize) -> Result<()> {
        let mut topo = self.topo_write();
        self.move_copy(&mut topo, gid, from, to)?;
        self.persist_manifest(&topo);
        Ok(())
    }

    /// The locked core of [`Cluster::move_group`]; also used by the
    /// membership operations, which batch several moves under one lock
    /// acquisition and persist the manifest once at the end.
    pub(crate) fn move_copy(
        &self,
        topo: &mut Topology,
        gid: Gid,
        from: usize,
        to: usize,
    ) -> Result<()> {
        let holders = topo
            .holders
            .get(&gid)
            .ok_or_else(|| MdbError::Config(format!("unknown group {gid}")))?;
        let position = holders
            .iter()
            .position(|&h| h == from)
            .ok_or_else(|| MdbError::Config(format!("worker {from} does not hold group {gid}")))?;
        if holders.contains(&to) {
            return Err(MdbError::Config(format!(
                "worker {to} already holds group {gid}"
            )));
        }
        // A past holder's append-only log still contains the segments it
        // exported (or lost its copy of); importing the group again would
        // append a second copy beside them and double every query result.
        if topo.ever_held[to].contains(&gid) {
            return Err(MdbError::Config(format!(
                "worker {to} previously held group {gid} and its log still contains the \
                 group's segments; importing it again would duplicate them"
            )));
        }
        let source = topo.workers[from]
            .sender
            .clone()
            .ok_or_else(|| MdbError::Config(format!("worker {from} is not active")))?;
        let target = topo.workers[to]
            .sender
            .clone()
            .ok_or_else(|| MdbError::Config(format!("worker {to} is not active")))?;
        // Drain + export on the source. A death here aborts the handoff
        // with the group still routed to its surviving holders.
        let (tx, rx) = bounded(1);
        if source.send(Command::Export(vec![gid], tx)).is_err() {
            topo.mark_dead(from, "died during handoff export");
            return Err(MdbError::Ingestion(format!(
                "worker {from} died during handoff export of group {gid}"
            )));
        }
        let shipped = match rx.recv() {
            Ok(Ok(shipped)) => shipped,
            Ok(Err(e)) => {
                return Err(MdbError::Ingestion(format!(
                    "worker {from} failed to export group {gid}: {e}"
                )))
            }
            Err(_) => {
                topo.mark_dead(from, "died during handoff export");
                return Err(MdbError::Ingestion(format!(
                    "worker {from} died during handoff export of group {gid}"
                )));
            }
        };
        // Import on the target; the routing flip waits for its durability.
        let (tx, rx) = bounded(1);
        if target.send(Command::Import(shipped, tx)).is_err() {
            topo.mark_dead(to, "died during handoff import");
            return Err(MdbError::Ingestion(format!(
                "worker {to} died during handoff import of group {gid}"
            )));
        }
        match rx.recv() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                return Err(MdbError::Ingestion(format!(
                    "worker {to} failed to import group {gid}: {e}"
                )))
            }
            Err(_) => {
                topo.mark_dead(to, "died during handoff import");
                return Err(MdbError::Ingestion(format!(
                    "worker {to} died during handoff import of group {gid}"
                )));
            }
        }
        // Committed: flip the copy to its new holder, same position. The
        // target joins the group's ever-held set, so no later handoff can
        // route the group back onto the donor's leftover segments — and the
        // donor keeps its membership for the same reason.
        topo.holders.get_mut(&gid).expect("checked above")[position] = to;
        topo.ever_held[to].insert(gid);
        Ok(())
    }
}

//! Cluster health reporting: per-worker lifecycle state and the
//! master-side snapshot returned by [`crate::Cluster::health`].
//!
//! The master supervises workers instead of trusting them: every
//! observation point (ingest routing, flush, queries, an explicit health
//! probe) that sees a worker's channel disconnected declares the worker
//! dead and strips it from the placement, so the snapshot reflects what
//! the master has actually verified rather than what it hopes is true.

use mdb_types::Gid;

/// Lifecycle state of one worker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Spawned and, as far as the master knows, serving its groups.
    Active,
    /// Declared dead: its channel disconnected (the thread is provably
    /// gone) or it was explicitly killed. A merely slow worker is never
    /// declared dead — a timed-out probe only sets
    /// [`WorkerHealth::probe_timed_out`]. Its groups were handed to
    /// surviving replicas (or lost, at replication factor 1).
    Dead,
    /// Decommissioned via [`crate::Cluster::remove_worker`]: it drained and
    /// handed every group off before stopping. The slot index stays
    /// reserved so placements remain stable across restarts.
    Removed,
}

impl std::fmt::Display for WorkerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerState::Active => write!(f, "active"),
            WorkerState::Dead => write!(f, "dead"),
            WorkerState::Removed => write!(f, "removed"),
        }
    }
}

/// One worker's slice of a [`ClusterHealth`] snapshot.
#[derive(Debug, Clone)]
pub struct WorkerHealth {
    /// The worker's slot index (stable for the cluster's lifetime).
    pub index: usize,
    pub state: WorkerState,
    /// Every group the worker holds a copy of (primary or replica), sorted.
    pub hosted_gids: Vec<Gid>,
    /// The groups this worker currently serves queries for, sorted.
    pub primary_gids: Vec<Gid>,
    /// Group batches the worker has ingested.
    pub batches_ingested: u64,
    /// The first ingestion error the worker deferred (cleared by the first
    /// flush that reports it).
    pub first_error: Option<String>,
    /// Deferred ingestion errors beyond the first.
    pub deferred_errors: u64,
    /// True when this snapshot's liveness probe timed out while the
    /// worker's channel stayed connected: the worker is slow (its command
    /// queue is long, or a scan/flush is in flight), **not** declared dead.
    /// Re-probe to distinguish slow from stuck; only a disconnected channel
    /// marks a worker [`WorkerState::Dead`].
    pub probe_timed_out: bool,
    /// Why a non-[`WorkerState::Active`] worker left service.
    pub note: Option<String>,
}

/// A point-in-time snapshot of the cluster, from the master's view after
/// probing every worker it still believed alive.
#[derive(Debug, Clone)]
pub struct ClusterHealth {
    /// Copies kept per group ([`crate::ClusterConfig::replication_factor`]).
    pub replication_factor: usize,
    /// One entry per worker slot, in slot order.
    pub workers: Vec<WorkerHealth>,
    /// Groups with no surviving holder: their un-ingested data is refused
    /// and queries silently omit them until an operator intervenes. Empty
    /// whenever fewer than `replication_factor` workers have failed.
    pub lost_gids: Vec<Gid>,
}

impl ClusterHealth {
    /// Number of workers still in service.
    pub fn active_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.state == WorkerState::Active)
            .count()
    }

    /// True when a worker has died (so some groups run below their
    /// configured copy count) or a group has been lost outright. Queries
    /// still answer, but from fewer (or no) replicas than configured.
    pub fn is_degraded(&self) -> bool {
        !self.lost_gids.is_empty() || self.workers.iter().any(|w| w.state == WorkerState::Dead)
    }
}

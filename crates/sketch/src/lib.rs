//! Mergeable sketches carried in block metadata (ROADMAP Open item 2).
//!
//! Three sketches answer the query classes zone maps cannot — quantiles,
//! distinct counts, and heavy hitters — from per-block statistics alone, so
//! a sketch query never fetches a segment body:
//!
//! * [`QuantileSketch`] — a DDSketch-style fixed-γ logarithmic histogram
//!   (the non-collapsing core of UDDSketch) with relative value error
//!   [`QUANTILE_RELATIVE_ERROR`] at any rank;
//! * [`DistinctSketch`] — a HyperLogLog with 2^12 registers and
//!   linear-counting small-range correction, relative error
//!   [`DISTINCT_RELATIVE_ERROR`];
//! * [`TopKSketch`] — a count-min sketch plus an exact candidate key set;
//!   `top_k` selects by estimate through a heap, and estimates overcount by
//!   at most [`TOPK_COUNT_ERROR`] × total weight (never undercount).
//!
//! **Merge invariance is the load-bearing property.** Every sketch's state
//! is built exclusively from commutative, associative, keyed operations
//! (counter adds, register maxima, set unions) over canonical ordered maps,
//! and serialization is a pure function of that state. Merging *any*
//! partition of the same updates — any split points, any order, any nesting
//! — therefore yields bit-identical bytes, which is what makes scatter-
//! gather across workers, replica scoping, and block-boundary changes
//! (handoffs re-batch blocks) safe: the answer cannot depend on where the
//! data happened to live. This is also why the quantile sketch deliberately
//! does **not** adopt UDDSketch's adaptive bucket collapsing: collapse
//! timing depends on insertion order and would break the invariant.
//!
//! The crate has no dependencies (vendored-shim discipline) and no floats
//! in sketch *state* — floats appear only in estimates computed at query
//! time, so `Eq` is exact and serialized bytes are canonical.
//!
//! Memory: state is sparse (`BTreeMap`/`BTreeSet`), so a sketch over one
//! group's values in one block costs O(occupied quantile buckets + distinct
//! keys) — typically a few hundred entries, a few KiB serialized — not the
//! dense 2^12 + depth×width arrays the parameters suggest.

use std::collections::{BTreeMap, BTreeSet};

/// Relative value error of [`QuantileSketch::quantile`]: the returned value
/// `v` satisfies `|v − x| ≤ QUANTILE_RELATIVE_ERROR × |x|` where `x` is the
/// exact nearest-rank quantile (plus [`QUANTILE_ZERO_THRESHOLD`] absolute
/// slack for values collapsed into the zero bucket). Tests import this
/// constant, so the documented bound cannot drift from the tested one.
pub const QUANTILE_RELATIVE_ERROR: f64 = 0.01;

/// Magnitudes at or below this are stored in the exact zero bucket (a
/// logarithmic histogram cannot bucket 0 itself); it is also the absolute
/// error floor of quantile answers.
pub const QUANTILE_ZERO_THRESHOLD: f64 = 1e-9;

/// Relative error bound of [`DistinctSketch::estimate`] used by the
/// accuracy tests: `|estimate − n| ≤ max(1, DISTINCT_RELATIVE_ERROR × n)`.
/// With 2^12 registers the typical HyperLogLog error is 1.04/√4096 ≈ 1.6%;
/// 5% is the conservative bound we pin, and small cardinalities use
/// linear counting which is far more accurate still.
pub const DISTINCT_RELATIVE_ERROR: f64 = 0.05;

/// Overcount bound of [`TopKSketch::estimate`] as a fraction of the total
/// inserted weight: `true ≤ estimate ≤ true + TOPK_COUNT_ERROR × total`.
/// (Count-min never undercounts; the min over [`CM_DEPTH`] rows bounds the
/// collision overcount.)
pub const TOPK_COUNT_ERROR: f64 = CM_DEPTH as f64 / CM_WIDTH as f64;

/// HyperLogLog precision: 2^12 = 4096 registers.
pub const HLL_PRECISION: u32 = 12;
const HLL_REGISTERS: u64 = 1 << HLL_PRECISION;

/// Count-min rows (independent hash functions).
pub const CM_DEPTH: usize = 4;
/// Count-min columns per row.
pub const CM_WIDTH: usize = 1024;

/// SplitMix64: a strong, cheap, dependency-free mixer; the single hash
/// family behind both the HyperLogLog and the count-min rows.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-row seeds for the count-min hashes (arbitrary odd constants).
const CM_ROW_SEEDS: [u64; CM_DEPTH] = [
    0xA076_1D64_78BD_642F,
    0xE703_7ED1_A0B4_28DB,
    0x8EBC_6AF0_9C88_C6E3,
    0x5899_65CC_7537_4CC3,
];

// ------------------------------------------------------------ quantiles --

/// A fixed-γ logarithmic histogram over signed values: bucket `i > 0` holds
/// magnitudes in `(γ^(i−1), γ^i]` with γ = (1+α)/(1−α) and
/// α = [`QUANTILE_RELATIVE_ERROR`], so the bucket midpoint (in log space)
/// is within relative α of every member. Negative values mirror into their
/// own bucket map; near-zero values get an exact zero bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    /// Values with `|v| ≤ QUANTILE_ZERO_THRESHOLD`.
    zero: u64,
    /// Bucket index → count for negative values (indexed by magnitude).
    neg: BTreeMap<i32, u64>,
    /// Bucket index → count for positive values.
    pos: BTreeMap<i32, u64>,
}

fn gamma() -> f64 {
    (1.0 + QUANTILE_RELATIVE_ERROR) / (1.0 - QUANTILE_RELATIVE_ERROR)
}

/// Bucket index of a magnitude `a > QUANTILE_ZERO_THRESHOLD`.
fn bucket_of(a: f64) -> i32 {
    (a.ln() / gamma().ln()).ceil() as i32
}

/// Representative value of bucket `i`: the γ-midpoint of `(γ^(i−1), γ^i]`.
fn representative(i: i32) -> f64 {
    let g = gamma();
    ((f64::from(i) - 1.0) * g.ln()).exp() * (1.0 + g) / 2.0
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value. Non-finite values are ignored — they have no
    /// rank on the real line (reconstructed segment values are finite).
    pub fn insert(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let magnitude = value.abs();
        if magnitude <= QUANTILE_ZERO_THRESHOLD {
            self.zero += 1;
        } else if value > 0.0 {
            *self.pos.entry(bucket_of(magnitude)).or_insert(0) += 1;
        } else {
            *self.neg.entry(bucket_of(magnitude)).or_insert(0) += 1;
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.zero + self.neg.values().sum::<u64>() + self.pos.values().sum::<u64>()
    }

    /// The nearest-rank `q`-percentile (`q` in `[0, 100]`): the value at
    /// rank `⌈q/100 × n⌉` (clamped to `[1, n]`) in ascending order, within
    /// [`QUANTILE_RELATIVE_ERROR`] relative error. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 || !(0.0..=100.0).contains(&q) {
            return None;
        }
        let rank = ((q / 100.0 * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        // Ascending value order: most-negative first (negative buckets by
        // descending magnitude index), then zero, then positives ascending.
        for (&idx, &count) in self.neg.iter().rev() {
            cum += count;
            if cum >= rank {
                return Some(-representative(idx));
            }
        }
        cum += self.zero;
        if cum >= rank {
            return Some(0.0);
        }
        for (&idx, &count) in self.pos.iter() {
            cum += count;
            if cum >= rank {
                return Some(representative(idx));
            }
        }
        unreachable!("rank {rank} exceeds count {n}")
    }

    /// Adds `other`'s counts into `self` (commutative, associative).
    pub fn merge(&mut self, other: &Self) {
        self.zero += other.zero;
        for (&idx, &count) in &other.neg {
            *self.neg.entry(idx).or_insert(0) += count;
        }
        for (&idx, &count) in &other.pos {
            *self.pos.entry(idx).or_insert(0) += count;
        }
    }

    /// Occupied buckets (for memory accounting).
    pub fn buckets(&self) -> usize {
        self.neg.len() + self.pos.len() + usize::from(self.zero > 0)
    }
}

// ------------------------------------------------------- distinct count --

/// A sparse HyperLogLog over `u64` keys: 2^[`HLL_PRECISION`] registers,
/// each holding the maximum observed leading-zero rank of the hashed key's
/// suffix. Merge is a per-register maximum.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistinctSketch {
    /// Register index → rank; absent registers are 0.
    registers: BTreeMap<u16, u8>,
}

impl DistinctSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one key (duplicates are free).
    pub fn insert(&mut self, key: u64) {
        let h = splitmix64(key);
        let idx = (h >> (64 - HLL_PRECISION)) as u16;
        let suffix = h << HLL_PRECISION;
        let rank = (suffix.leading_zeros() + 1).min(64 - HLL_PRECISION + 1) as u8;
        let slot = self.registers.entry(idx).or_insert(0);
        *slot = (*slot).max(rank);
    }

    /// Estimated number of distinct keys, with the standard linear-counting
    /// correction for small cardinalities.
    pub fn estimate(&self) -> f64 {
        let m = HLL_REGISTERS as f64;
        let occupied = self.registers.len() as f64;
        let zero_registers = m - occupied;
        let sum: f64 = zero_registers
            + self
                .registers
                .values()
                .map(|&r| (-f64::from(r)).exp2())
                .sum::<f64>();
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zero_registers > 0.0 {
            m * (m / zero_registers).ln()
        } else {
            raw
        }
    }

    /// Takes the per-register maximum of `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        for (&idx, &rank) in &other.registers {
            let slot = self.registers.entry(idx).or_insert(0);
            *slot = (*slot).max(rank);
        }
    }

    /// Occupied registers (for memory accounting).
    pub fn registers(&self) -> usize {
        self.registers.len()
    }
}

// ------------------------------------------------------------ heavy hits --

/// Count-min sketch plus an exact candidate key set. The counters bound
/// each key's weight from above (collisions only add); the candidate set —
/// a union-merged `BTreeSet`, bounded in this system by the keys per group
/// — lets `top_k` enumerate without external knowledge of the key universe.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopKSketch {
    /// Flattened `row × CM_WIDTH + column` → weight; absent counters are 0.
    counters: BTreeMap<u32, u64>,
    /// Every key ever inserted.
    candidates: BTreeSet<u32>,
}

fn cm_cell(key: u32, row: usize) -> u32 {
    let h = splitmix64(u64::from(key) ^ CM_ROW_SEEDS[row]);
    (row * CM_WIDTH) as u32 + (h % CM_WIDTH as u64) as u32
}

impl TopKSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `weight` to `key`'s count.
    pub fn add(&mut self, key: u32, weight: u64) {
        for row in 0..CM_DEPTH {
            *self.counters.entry(cm_cell(key, row)).or_insert(0) += weight;
        }
        self.candidates.insert(key);
    }

    /// Upper-bound estimate of `key`'s total weight (exact when no key
    /// collides with it in every row).
    pub fn estimate(&self, key: u32) -> u64 {
        (0..CM_DEPTH)
            .map(|row| self.counters.get(&cm_cell(key, row)).copied().unwrap_or(0))
            .min()
            .unwrap_or(0)
    }

    /// The `k` heaviest candidates as `(key, estimated weight)`, ordered by
    /// weight descending with ascending key as the deterministic tie-break.
    pub fn top_k(&self, k: usize) -> Vec<(u32, u64)> {
        // The candidate set is small (keys per group), so a full sort is
        // the clearest heap.
        let mut heap: Vec<(u32, u64)> = self
            .candidates
            .iter()
            .map(|&key| (key, self.estimate(key)))
            .collect();
        heap.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        heap.truncate(k);
        heap
    }

    /// Adds `other`'s counters and candidates into `self`.
    pub fn merge(&mut self, other: &Self) {
        for (&cell, &weight) in &other.counters {
            *self.counters.entry(cell).or_insert(0) += weight;
        }
        self.candidates.extend(other.candidates.iter().copied());
    }

    /// Candidate keys tracked (for memory accounting).
    pub fn candidates(&self) -> usize {
        self.candidates.len()
    }
}

// ---------------------------------------------------------- block sketch --

/// Serialization format version of [`BlockSketch::to_bytes`].
pub const SKETCH_FORMAT_VERSION: u8 = 1;

/// The sketch triple one block (or one group within a block) carries:
/// quantiles over reconstructed values, distinct keys, and per-key weights.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockSketch {
    /// Quantiles over every reconstructed data-point value.
    pub quantiles: QuantileSketch,
    /// Distinct inserted keys (time series ids).
    pub distinct: DistinctSketch,
    /// Per-key weights (data points per time series id).
    pub topk: TopKSketch,
}

impl BlockSketch {
    /// An empty sketch triple.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges `other` into `self`; commutative and associative, so any
    /// merge tree over the same updates produces identical state.
    pub fn merge(&mut self, other: &Self) {
        self.quantiles.merge(&other.quantiles);
        self.distinct.merge(&other.distinct);
        self.topk.merge(&other.topk);
    }

    /// Canonical serialization: a pure function of the (ordered) state, so
    /// equal sketches always produce identical bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![SKETCH_FORMAT_VERSION];
        let q = &self.quantiles;
        put_varint(&mut out, q.zero);
        put_varint(&mut out, q.neg.len() as u64);
        for (&idx, &count) in &q.neg {
            put_varint(&mut out, zigzag(i64::from(idx)));
            put_varint(&mut out, count);
        }
        put_varint(&mut out, q.pos.len() as u64);
        for (&idx, &count) in &q.pos {
            put_varint(&mut out, zigzag(i64::from(idx)));
            put_varint(&mut out, count);
        }
        let d = &self.distinct;
        put_varint(&mut out, d.registers.len() as u64);
        for (&idx, &rank) in &d.registers {
            put_varint(&mut out, u64::from(idx));
            out.push(rank);
        }
        let t = &self.topk;
        put_varint(&mut out, t.counters.len() as u64);
        for (&cell, &weight) in &t.counters {
            put_varint(&mut out, u64::from(cell));
            put_varint(&mut out, weight);
        }
        put_varint(&mut out, t.candidates.len() as u64);
        for &key in &t.candidates {
            put_varint(&mut out, u64::from(key));
        }
        out
    }

    /// Parses [`BlockSketch::to_bytes`] output. `None` on any structural
    /// problem: wrong version, truncation, trailing bytes, out-of-range
    /// indices, or non-canonical (unsorted/duplicate) entries — a parsed
    /// sketch always re-serializes to the identical bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut cur = Reader { bytes, pos: 0 };
        if cur.u8()? != SKETCH_FORMAT_VERSION {
            return None;
        }
        let mut sketch = BlockSketch::new();
        sketch.quantiles.zero = cur.varint()?;
        for map in [&mut sketch.quantiles.neg, &mut sketch.quantiles.pos] {
            let n = cur.varint()?;
            let mut prev: Option<i32> = None;
            for _ in 0..n {
                let idx = i32::try_from(unzigzag(cur.varint()?)).ok()?;
                if prev.is_some_and(|p| p >= idx) {
                    return None;
                }
                prev = Some(idx);
                let count = cur.varint()?;
                if count == 0 {
                    return None;
                }
                map.insert(idx, count);
            }
        }
        let n = cur.varint()?;
        let mut prev: Option<u16> = None;
        for _ in 0..n {
            let idx = u16::try_from(cur.varint()?).ok()?;
            if u64::from(idx) >= HLL_REGISTERS || prev.is_some_and(|p| p >= idx) {
                return None;
            }
            prev = Some(idx);
            let rank = cur.u8()?;
            if rank == 0 || u32::from(rank) > 64 - HLL_PRECISION + 1 {
                return None;
            }
            sketch.distinct.registers.insert(idx, rank);
        }
        let n = cur.varint()?;
        let mut prev: Option<u32> = None;
        for _ in 0..n {
            let cell = u32::try_from(cur.varint()?).ok()?;
            if cell as usize >= CM_DEPTH * CM_WIDTH || prev.is_some_and(|p| p >= cell) {
                return None;
            }
            prev = Some(cell);
            let weight = cur.varint()?;
            if weight == 0 {
                return None;
            }
            sketch.topk.counters.insert(cell, weight);
        }
        let n = cur.varint()?;
        let mut prev: Option<u32> = None;
        for _ in 0..n {
            let key = u32::try_from(cur.varint()?).ok()?;
            if prev.is_some_and(|p| p >= key) {
                return None;
            }
            prev = Some(key);
            sketch.topk.candidates.insert(key);
        }
        cur.at_end().then_some(sketch)
    }
}

// ------------------------------------------------------- varint helpers --

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn varint(&mut self) -> Option<u64> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            v |= u64::from(b & 0x7F) << shift;
            if b < 0x80 {
                return Some(v);
            }
        }
        None
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Exact nearest-rank percentile over a sorted copy, mirroring the
    /// convention documented on [`QuantileSketch::quantile`].
    fn exact_quantile(values: &[f64], q: f64) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as u64;
        let rank = ((q / 100.0 * n as f64).ceil() as u64).clamp(1, n);
        sorted[rank as usize - 1]
    }

    fn quantile_close(approx: f64, exact: f64) -> bool {
        (approx - exact).abs()
            <= QUANTILE_RELATIVE_ERROR * exact.abs() * (1.0 + 1e-9) + QUANTILE_ZERO_THRESHOLD
    }

    #[test]
    fn quantile_empty_is_none() {
        assert_eq!(QuantileSketch::new().quantile(50.0), None);
        assert_eq!(DistinctSketch::new().estimate().round(), 0.0);
        assert!(TopKSketch::new().top_k(3).is_empty());
    }

    #[test]
    fn quantile_single_value() {
        let mut s = QuantileSketch::new();
        s.insert(42.5);
        for q in [0.0, 50.0, 100.0] {
            assert!(quantile_close(s.quantile(q).unwrap(), 42.5));
        }
    }

    #[test]
    fn quantile_signed_and_zero_values() {
        let values: Vec<f64> = (-50..=50).map(|i| f64::from(i) * 0.7).collect();
        let mut s = QuantileSketch::new();
        for &v in &values {
            s.insert(v);
        }
        for q in [0.0, 1.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let exact = exact_quantile(&values, q);
            let approx = s.quantile(q).unwrap();
            assert!(
                quantile_close(approx, exact),
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn distinct_is_near_exact_for_small_cardinalities() {
        for n in [1u64, 10, 100, 1000, 4000] {
            let mut s = DistinctSketch::new();
            for key in 0..n {
                s.insert(key);
                s.insert(key); // duplicates must not count
            }
            let est = s.estimate();
            let err = (est - n as f64).abs();
            assert!(
                err <= (DISTINCT_RELATIVE_ERROR * n as f64).max(1.0),
                "n={n}: estimate {est}"
            );
        }
    }

    /// For key universes up to 4096, no two keys collide in *every*
    /// count-min row, so estimates — and therefore `top_k` — are exact.
    /// This pins the hash family: if the seeds change and a full collision
    /// appears, this fails loudly instead of silently degrading top-k.
    #[test]
    fn no_full_count_min_collisions_for_small_key_universes() {
        let cells: Vec<[u32; CM_DEPTH]> = (0u32..4096)
            .map(|key| std::array::from_fn(|row| cm_cell(key, row)))
            .collect();
        let mut by_row0: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, c) in cells.iter().enumerate() {
            by_row0.entry(c[0]).or_default().push(i);
        }
        for group in by_row0.values() {
            for (a, &i) in group.iter().enumerate() {
                for &j in &group[a + 1..] {
                    assert!(
                        (1..CM_DEPTH).any(|row| cells[i][row] != cells[j][row]),
                        "keys {i} and {j} collide in every row"
                    );
                }
            }
        }
    }

    #[test]
    fn top_k_orders_by_weight_then_key() {
        let mut s = TopKSketch::new();
        s.add(7, 100);
        s.add(3, 250);
        s.add(9, 100);
        s.add(1, 5);
        assert_eq!(s.top_k(3), vec![(3, 250), (7, 100), (9, 100)]);
        assert_eq!(s.top_k(10).len(), 4);
        assert_eq!(s.estimate(3), 250);
    }

    #[test]
    fn serialization_round_trips_and_rejects_mutations() {
        let mut s = BlockSketch::new();
        for i in 0..200u32 {
            s.quantiles.insert(f64::from(i) - 55.5);
            s.distinct.insert(u64::from(i % 37));
            s.topk.add(i % 37, u64::from(i));
        }
        let bytes = s.to_bytes();
        let back = BlockSketch::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, s);
        assert_eq!(back.to_bytes(), bytes);
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x2C;
            if let Some(parsed) = BlockSketch::from_bytes(&bad) {
                // A surviving mutation must decode to a canonical sketch
                // that re-serializes to exactly the mutated bytes (the
                // mutation hit a value, not the structure).
                assert_eq!(parsed.to_bytes(), bad, "byte {pos}");
            }
        }
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(BlockSketch::from_bytes(&bytes[..cut]), None, "cut {cut}");
        }
    }

    /// One update stream applied through an arbitrary partition/merge tree.
    fn apply(updates: &[(f64, u32, u64)]) -> BlockSketch {
        let mut s = BlockSketch::new();
        for &(value, key, weight) in updates {
            s.quantiles.insert(value);
            s.distinct.insert(u64::from(key));
            s.topk.add(key, weight);
        }
        s
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn merging_any_partition_is_bit_identical(
            updates in proptest::collection::vec(
                (-1.0e4f64..1.0e4, 0u32..600, 1u64..50),
                1..200,
            ),
            cuts in proptest::collection::btree_set(1usize..199, 0..6),
            rotate in 0usize..200,
            pair_up in proptest::bool::ANY,
        ) {
            let reference = apply(&updates).to_bytes();

            // Random split points → chunks; random rotation of chunk order;
            // random merge nesting (fold vs pairwise tree).
            let mut bounds: Vec<usize> =
                cuts.into_iter().filter(|&c| c < updates.len()).collect();
            bounds.push(updates.len());
            let mut chunks = Vec::new();
            let mut start = 0;
            for b in bounds {
                chunks.push(apply(&updates[start..b]));
                start = b;
            }
            if !chunks.is_empty() {
                let r = rotate % chunks.len();
                chunks.rotate_left(r);
            }
            let merged = if pair_up {
                // Pairwise tree: merge adjacent pairs until one remains.
                let mut level = chunks;
                while level.len() > 1 {
                    let mut next = Vec::new();
                    for pair in level.chunks(2) {
                        let mut acc = pair[0].clone();
                        if let Some(rhs) = pair.get(1) {
                            acc.merge(rhs);
                        }
                        next.push(acc);
                    }
                    level = next;
                }
                level.pop().unwrap_or_default()
            } else {
                let mut acc = BlockSketch::new();
                for chunk in &chunks {
                    acc.merge(chunk);
                }
                acc
            };
            prop_assert_eq!(merged.to_bytes(), reference);
        }

        #[test]
        fn quantiles_stay_within_documented_error(
            values in proptest::collection::vec(-1.0e5f64..1.0e5, 1..400),
            q in 0.0f64..100.0,
        ) {
            let mut s = QuantileSketch::new();
            for &v in &values {
                s.insert(v);
            }
            let exact = exact_quantile(&values, q);
            let approx = s.quantile(q).unwrap();
            prop_assert!(
                quantile_close(approx, exact),
                "q={} approx={} exact={}", q, approx, exact
            );
        }

        #[test]
        fn top_k_never_undercounts_and_bounds_overcount(
            weights in proptest::collection::vec((0u32..300, 1u64..100), 1..150),
        ) {
            let mut s = TopKSketch::new();
            let mut exact: BTreeMap<u32, u64> = BTreeMap::new();
            let mut total = 0u64;
            for &(key, w) in &weights {
                s.add(key, w);
                *exact.entry(key).or_insert(0) += w;
                total += w;
            }
            let slack = (TOPK_COUNT_ERROR * total as f64).ceil() as u64;
            for (&key, &true_count) in &exact {
                let est = s.estimate(key);
                prop_assert!(est >= true_count, "key {} undercounted", key);
                prop_assert!(
                    est <= true_count + slack,
                    "key {} overcounted: {} vs {}", key, est, true_count
                );
            }
        }
    }
}

//! The TCP server: accept loop, admission control, and session threads.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mdb_types::{MdbError, Result};

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, Response, PROTOCOL_VERSION,
};
use crate::SharedDatastore;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// The address to bind; port 0 picks a free port (read it back from
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Admission control: at most this many connections are served at once.
    /// The permit is taken *before* `accept`, so excess connections wait in
    /// the listen backlog — overload degrades to blocking, never to
    /// unbounded thread or memory growth.
    pub max_connections: usize,
    /// Frames a session buffers between its socket reader and its executor.
    /// A client pipelining more requests than this blocks in the kernel's
    /// TCP flow control until the executor catches up.
    pub ingest_queue_depth: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 256,
            ingest_queue_depth: 8,
        }
    }
}

impl ServerOptions {
    /// Options derived from the shared tuning knobs (`ingest_queue_depth`
    /// keeps its configured meaning: frames in flight per producer).
    pub fn from_common(common: &mdb_query::CommonOptions) -> Self {
        Self {
            ingest_queue_depth: common.ingest_queue_depth,
            ..Self::default()
        }
    }
}

/// How long `shutdown` waits for sessions to drain and answer their queued
/// requests before severing their sockets outright. Sessions normally exit
/// within milliseconds of their read half closing; the cap only bites when
/// a client stops reading its own replies.
const SHUTDOWN_DRAIN_GRACE: std::time::Duration = std::time::Duration::from_secs(5);

/// A counting semaphore (std has none; built on `Mutex` + `Condvar`).
struct Semaphore {
    permits: Mutex<usize>,
    released: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Self {
            permits: Mutex::new(permits),
            released: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut permits = self.permits.lock().unwrap();
        while *permits == 0 {
            permits = self.released.wait(permits).unwrap();
        }
        *permits -= 1;
    }

    fn release(&self) {
        *self.permits.lock().unwrap() += 1;
        self.released.notify_one();
    }
}

/// State shared between the accept loop, the sessions, and `shutdown`.
struct Shared {
    shutting_down: AtomicBool,
    admission: Semaphore,
    /// One registered stream clone per live session, so `shutdown` can
    /// close their read halves and drain them.
    registry: Mutex<HashMap<u64, TcpStream>>,
    sessions: Mutex<Vec<JoinHandle<()>>>,
    next_session: AtomicU64,
    queue_depth: usize,
}

impl Shared {
    /// Registers a session's stream unless shutdown already swept the
    /// registry (the flag is checked under the registry lock, so a session
    /// either gets swept or refuses to start — never slips between).
    fn register(&self, session: u64, stream: TcpStream) -> bool {
        let mut registry = self.registry.lock().unwrap();
        if self.shutting_down.load(Ordering::SeqCst) {
            return false;
        }
        registry.insert(session, stream);
        true
    }

    fn deregister(&self, session: u64) -> Option<TcpStream> {
        self.registry.lock().unwrap().remove(&session)
    }
}

/// A running ModelarDB+ network front-end.
///
/// Owns a listener thread and one session (plus one socket-reader) thread
/// per admitted connection, all routed to one [`SharedDatastore`]. Dropping
/// the server shuts it down; [`Server::shutdown`] does the same but
/// surfaces the final flush's result.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    datastore: SharedDatastore,
}

impl Server {
    /// Binds `options.addr` and starts serving `datastore`.
    pub fn start(datastore: SharedDatastore, options: ServerOptions) -> Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shutting_down: AtomicBool::new(false),
            admission: Semaphore::new(options.max_connections.max(1)),
            registry: Mutex::new(HashMap::new()),
            sessions: Mutex::new(Vec::new()),
            next_session: AtomicU64::new(1),
            queue_depth: options.ingest_queue_depth,
        });
        let accept = {
            let shared = Arc::clone(&shared);
            let datastore = datastore.clone();
            std::thread::spawn(move || accept_loop(listener, shared, datastore))
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            datastore,
        })
    }

    /// The bound address (the actual port when `addr` asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of sessions currently being served.
    pub fn active_sessions(&self) -> usize {
        self.shared.registry.lock().unwrap().len()
    }

    /// Stops accepting, drains every session (their read halves are closed,
    /// queued requests still get answered), joins all threads, and flushes
    /// the datastore through its normal path.
    pub fn shutdown(mut self) -> Result<()> {
        self.shutdown_impl()
    }

    fn shutdown_impl(&mut self) -> Result<()> {
        let Some(accept) = self.accept.take() else {
            return Ok(());
        };
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Close every live session's read half under the registry lock:
        // readers see EOF, executors drain what was already queued, reply,
        // and exit. Writes (replies) still go through.
        {
            let registry = self.shared.registry.lock().unwrap();
            for stream in registry.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        // Wake the accept loop if it is blocked in `accept` (the probe
        // connection is dropped immediately; if the loop was instead blocked
        // on admission, a draining session's released permit wakes it).
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        // Draining sessions deregister themselves as they finish. One stuck
        // writing to a client that stopped reading (full TCP send window)
        // would block its `session.join()` below forever — so after a grace
        // period sever both halves, which fails the blocked write and lets
        // the straggler exit.
        let deadline = std::time::Instant::now() + SHUTDOWN_DRAIN_GRACE;
        loop {
            let registry = self.shared.registry.lock().unwrap();
            if registry.is_empty() {
                break;
            }
            if std::time::Instant::now() >= deadline {
                for stream in registry.values() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
                break;
            }
            drop(registry);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let sessions = std::mem::take(&mut *self.shared.sessions.lock().unwrap());
        for session in sessions {
            let _ = session.join();
        }
        self.datastore.flush()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.shutdown_impl();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, datastore: SharedDatastore) {
    loop {
        shared.admission.acquire();
        if shared.shutting_down.load(Ordering::SeqCst) {
            shared.admission.release();
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                shared.admission.release();
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            // The shutdown probe (or a client racing it): turn it away.
            shared.admission.release();
            return;
        }
        let session = shared.next_session.fetch_add(1, Ordering::SeqCst);
        let handle = {
            let shared = Arc::clone(&shared);
            let datastore = datastore.clone();
            std::thread::spawn(move || {
                run_session(stream, session, &shared, &datastore);
                shared.deregister(session);
                shared.admission.release();
            })
        };
        // Reap finished sessions before tracking the new one, so the handle
        // list stays proportional to live connections under churn rather
        // than growing with every connection ever served.
        let mut sessions = shared.sessions.lock().unwrap();
        let mut i = 0;
        while i < sessions.len() {
            if sessions[i].is_finished() {
                let _ = sessions.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        sessions.push(handle);
    }
}

/// What the socket-reader thread hands the executor.
enum Incoming {
    /// One intact frame's payload.
    Frame(Vec<u8>),
    /// The framing broke (oversized prefix, EOF mid-frame, socket error):
    /// nothing after this point can be parsed.
    Broken(String),
}

/// Per-session request state.
struct Session {
    prepared: HashMap<String, String>,
    /// `false` (strict, the default): `DeferredIngestion` is an error frame.
    /// `true` (`SET errors = deferred`): it becomes `Ok` with the detail in
    /// `info`, acknowledging that the operation itself succeeded.
    lenient_deferred: bool,
}

fn run_session(stream: TcpStream, session: u64, shared: &Shared, datastore: &SharedDatastore) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let Ok(registered) = stream.try_clone() else {
        return;
    };
    if !shared.register(session, registered) {
        // Shutdown already swept the registry; turn the connection away.
        let mut out = std::io::BufWriter::new(stream);
        let bye = Response::Error {
            code: ErrorCode::Unavailable,
            message: "server is shutting down".to_string(),
        };
        let _ = write_frame(&mut out, &bye.encode());
        return;
    }

    // The reader decodes framing only; the bounded queue is the per-session
    // admission control (depth frames in flight, then TCP backpressure).
    let (frames_tx, frames) = crossbeam_channel::bounded(shared.queue_depth.max(1));
    let reader = std::thread::spawn(move || {
        let mut input = std::io::BufReader::new(read_half);
        loop {
            match read_frame(&mut input) {
                Ok(Some(payload)) => {
                    if frames_tx.send(Incoming::Frame(payload)).is_err() {
                        return;
                    }
                }
                Ok(None) => return, // clean EOF at a frame boundary
                Err(error) => {
                    let _ = frames_tx.send(Incoming::Broken(error.to_string()));
                    return;
                }
            }
        }
    });

    let mut out = std::io::BufWriter::new(stream);
    execute_session(session, &frames, &mut out, datastore);

    // Unblock and collect the reader even when the executor left first
    // (e.g. a write error while the client is still sending).
    if let Some(registered) = shared.deregister(session) {
        let _ = registered.shutdown(Shutdown::Both);
    }
    drop(frames);
    let _ = reader.join();
}

/// Runs the session protocol; returns when the connection is done.
fn execute_session(
    session: u64,
    frames: &crossbeam_channel::Receiver<Incoming>,
    out: &mut impl std::io::Write,
    datastore: &SharedDatastore,
) {
    // Handshake: the first frame must be a matching Hello.
    let hello = match frames.recv() {
        Ok(Incoming::Frame(payload)) => Request::decode(&payload),
        Ok(Incoming::Broken(message)) => {
            let _ = send(out, &[protocol_error(message)]);
            return;
        }
        Err(_) => return,
    };
    let reply = match hello {
        Ok(Request::Hello {
            version: PROTOCOL_VERSION,
        }) => Response::Hello {
            version: PROTOCOL_VERSION,
            session,
        },
        Ok(Request::Hello { version }) => protocol_error(format!(
            "protocol version {version} not supported (server speaks {PROTOCOL_VERSION})"
        )),
        Ok(other) => protocol_error(format!("expected Hello, got {other:?}")),
        Err(error) => frame_error(error),
    };
    let greeted = matches!(reply, Response::Hello { .. });
    if send(out, &[reply]).is_err() || !greeted {
        return;
    }

    let mut state = Session {
        prepared: HashMap::new(),
        lenient_deferred: false,
    };
    loop {
        let request = match frames.recv() {
            Ok(Incoming::Frame(payload)) => match Request::decode(&payload) {
                Ok(request) => request,
                Err(error) => {
                    // Malformed payload in an intact envelope: answer and
                    // keep serving (envelope damage arrives as `Broken`).
                    if send(out, &[frame_error(error)]).is_err() {
                        return;
                    }
                    continue;
                }
            },
            Ok(Incoming::Broken(message)) => {
                let _ = send(out, &[protocol_error(message)]);
                return;
            }
            Err(_) => return, // client closed cleanly (or shutdown drained us)
        };
        let last = matches!(request, Request::Bye);
        let responses = handle_request(request, &mut state, datastore);
        if send(out, &responses).is_err() || last {
            return;
        }
    }
}

fn handle_request(
    request: Request,
    state: &mut Session,
    datastore: &SharedDatastore,
) -> Vec<Response> {
    match request {
        Request::Hello { .. } => vec![protocol_error("session already greeted".to_string())],
        Request::Sql { text } => run_sql(&text, datastore),
        Request::Prepare { name, sql } => match mdb_query::parse(&sql) {
            Ok(_) => {
                state.prepared.insert(name.clone(), sql);
                vec![Response::Ok {
                    info: format!("prepared '{name}'"),
                }]
            }
            Err(error) => vec![engine_error(error)],
        },
        Request::ExecPrepared { name } => match state.prepared.get(&name) {
            Some(sql) => run_sql(&sql.clone(), datastore),
            None => vec![engine_error(MdbError::NotFound(format!(
                "no prepared statement '{name}' in this session"
            )))],
        },
        Request::IngestBatch(batch) => {
            let rows = batch.len();
            ack_ingest(
                datastore.ingest_batch(&batch),
                format!("ingested {rows} rows"),
                state,
            )
        }
        Request::IngestPoints(points) => {
            let n = points.len();
            ack_ingest(
                datastore.ingest_points(&points),
                format!("ingested {n} points"),
                state,
            )
        }
        Request::Flush => ack_ingest(datastore.flush(), "flushed".to_string(), state),
        Request::Health => match datastore.health() {
            Ok(health) => vec![Response::Health(health)],
            Err(error) => vec![engine_error(error)],
        },
        Request::SetOption { key, value } => set_option(&key, &value, state),
        Request::Bye => vec![Response::Ok {
            info: "bye".to_string(),
        }],
    }
}

fn run_sql(text: &str, datastore: &SharedDatastore) -> Vec<Response> {
    match datastore.sql(text) {
        Ok(result) => Response::stream_result(result),
        Err(error) => vec![engine_error(error)],
    }
}

/// Acknowledges a mutating operation, honoring the session's configured
/// consistency of errors for deferred failures.
fn ack_ingest(outcome: Result<()>, info: String, state: &Session) -> Vec<Response> {
    match outcome {
        Ok(()) => vec![Response::Ok { info }],
        Err(MdbError::DeferredIngestion(detail)) if state.lenient_deferred => {
            vec![Response::Ok {
                info: format!("{info}; deferred failure reported: {detail}"),
            }]
        }
        Err(error) => vec![engine_error(error)],
    }
}

fn set_option(key: &str, value: &str, state: &mut Session) -> Vec<Response> {
    match (key, value) {
        ("errors", "strict") => state.lenient_deferred = false,
        ("errors", "deferred") => state.lenient_deferred = true,
        ("errors", other) => {
            return vec![engine_error(MdbError::Config(format!(
                "option 'errors' takes 'strict' or 'deferred', not '{other}'"
            )))]
        }
        (other, _) => {
            return vec![engine_error(MdbError::Config(format!(
                "unknown session option '{other}'"
            )))]
        }
    }
    vec![Response::Ok {
        info: format!("{key} = {value}"),
    }]
}

fn engine_error(error: MdbError) -> Response {
    Response::Error {
        code: ErrorCode::of(&error),
        message: error.to_string(),
    }
}

fn protocol_error(message: String) -> Response {
    Response::Error {
        code: ErrorCode::Protocol,
        message,
    }
}

fn frame_error(error: FrameError) -> Response {
    let FrameError::Malformed(message) = error;
    protocol_error(message)
}

/// Writes the responses to one request and flushes them as a unit.
fn send(out: &mut impl std::io::Write, responses: &[Response]) -> std::io::Result<()> {
    for response in responses {
        write_frame(out, &response.encode())?;
    }
    out.flush()
}

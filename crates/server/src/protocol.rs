//! The framed wire protocol.
//!
//! Every message is one length-prefixed frame on the TCP stream:
//!
//! ```text
//! [u32 le: payload length][u8: kind][payload…]
//! ```
//!
//! The length counts the kind byte plus the payload, must be at least 1,
//! and is bounded by [`MAX_FRAME_BYTES`] — an oversized prefix is rejected
//! before anything is allocated, so a hostile or broken client cannot make
//! the server reserve gigabytes. All integers are little-endian; floats
//! travel as their IEEE-754 bit patterns, so query results round-trip
//! **bit-identically** (the equivalence suites compare them with `==`).
//!
//! Damage containment: a frame whose *envelope* is intact but whose payload
//! is malformed (unknown kind, truncated fields, bad UTF-8) is answered
//! with a typed [`Response::Error`] frame and the connection keeps serving.
//! Only envelope-level damage — an oversized length prefix, or the stream
//! ending mid-frame — closes the connection, because resynchronization is
//! impossible once the framing itself cannot be trusted.

use mdb_query::{Cell, DatastoreHealth, QueryResult};
use mdb_types::{MdbError, RowBatch, Tid, Timestamp, Value};

/// Protocol revision; bumped on any incompatible change. The server rejects
/// a `Hello` carrying a different version with [`ErrorCode::Protocol`].
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one frame's payload (16 MiB — comfortably above the
/// largest batch `repro serve` ships, far below an OOM).
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Upper bound on the series count one `IngestBatch` frame may claim.
/// Decoding allocates one column per claimed series *before* any cell data
/// is read, so without this cap a 9-byte frame claiming `u32::MAX` series
/// and zero rows would drive a multi-GB allocation. 65 536 is far above any
/// realistic batch width (the repro workloads use dozens of series) while
/// keeping the worst-case pre-allocation at a few MB.
pub const MAX_BATCH_SERIES: usize = 65_536;

/// Rows per [`Response::ResultRows`] frame when a result is streamed.
pub const RESULT_CHUNK_ROWS: usize = 256;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens the session; must be the first frame.
    Hello { version: u32 },
    /// Runs one SQL statement.
    Sql { text: String },
    /// Parses and remembers a statement under a session-local name.
    Prepare { name: String, sql: String },
    /// Runs a statement prepared earlier in this session.
    ExecPrepared { name: String },
    /// Ingests a full-width row batch (column `i` = catalog series `i`).
    IngestBatch(RowBatch),
    /// Ingests loose points, assembled into rows by the datastore.
    IngestPoints(Vec<(Tid, Timestamp, Value)>),
    /// Drains every buffer so subsequent queries see the ingested data.
    Flush,
    /// Probes the datastore's health.
    Health,
    /// Sets a session option (`errors = strict | deferred`).
    SetOption { key: String, value: String },
    /// Ends the session cleanly.
    Bye,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answers `Hello`.
    Hello { version: u32, session: u64 },
    /// The request succeeded and produced no result set.
    Ok { info: String },
    /// The request failed; the session stays usable.
    Error { code: ErrorCode, message: String },
    /// Starts a result set: the column names.
    ResultHeader { columns: Vec<String> },
    /// A chunk of result rows (streamed; order preserved).
    ResultRows { rows: Vec<Vec<Cell>> },
    /// Ends a result set with the total row count.
    ResultEnd { rows: u64 },
    /// Answers `Health`.
    Health(DatastoreHealth),
}

/// Wire error taxonomy: [`MdbError`]'s variants plus the protocol itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    Config = 1,
    Ingestion = 2,
    /// The operation *succeeded*; an earlier deferred failure is being
    /// reported. Retrying would ingest the data twice.
    DeferredIngestion = 3,
    Corrupt = 4,
    Query = 5,
    NotFound = 6,
    Io = 7,
    /// A malformed frame, an unknown kind, or a version mismatch.
    Protocol = 8,
    /// The server is shutting down and no longer accepts work.
    Unavailable = 9,
}

impl ErrorCode {
    fn from_u8(code: u8) -> Option<Self> {
        Some(match code {
            1 => ErrorCode::Config,
            2 => ErrorCode::Ingestion,
            3 => ErrorCode::DeferredIngestion,
            4 => ErrorCode::Corrupt,
            5 => ErrorCode::Query,
            6 => ErrorCode::NotFound,
            7 => ErrorCode::Io,
            8 => ErrorCode::Protocol,
            9 => ErrorCode::Unavailable,
            _ => return None,
        })
    }

    /// The code for an engine-side error.
    pub fn of(error: &MdbError) -> Self {
        match error {
            MdbError::Config(_) => ErrorCode::Config,
            MdbError::Ingestion(_) => ErrorCode::Ingestion,
            MdbError::DeferredIngestion(_) => ErrorCode::DeferredIngestion,
            MdbError::Corrupt(_) => ErrorCode::Corrupt,
            MdbError::Query(_) => ErrorCode::Query,
            MdbError::NotFound(_) => ErrorCode::NotFound,
            MdbError::Io(_) => ErrorCode::Io,
        }
    }

    /// Reconstructs a client-side [`MdbError`] carrying `message`.
    pub fn into_error(self, message: String) -> MdbError {
        match self {
            ErrorCode::Config => MdbError::Config(message),
            ErrorCode::Ingestion => MdbError::Ingestion(message),
            ErrorCode::DeferredIngestion => MdbError::DeferredIngestion(message),
            ErrorCode::Corrupt => MdbError::Corrupt(message),
            ErrorCode::Query => MdbError::Query(message),
            ErrorCode::NotFound => MdbError::NotFound(message),
            ErrorCode::Io | ErrorCode::Protocol | ErrorCode::Unavailable => {
                MdbError::Io(std::io::Error::other(format!("{self:?}: {message}")))
            }
        }
    }
}

/// Why a frame's payload could not be decoded. The envelope itself is
/// validated by [`read_frame`], which reports damage (oversized length
/// prefix, stream ending mid-frame) as `io::Error` — by then
/// resynchronization is impossible and the session closes. A payload
/// error, in contrast, is always recoverable: the session answers with an
/// error frame and keeps serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The payload was malformed (unknown kind, truncated fields, bad
    /// UTF-8) inside an intact envelope.
    Malformed(String),
}

// ---------------------------------------------------------------- encoding

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_cell(out: &mut Vec<u8>, cell: &Cell) {
    match cell {
        Cell::Null => out.push(0),
        Cell::Int(v) => {
            out.push(1);
            put_i64(out, *v);
        }
        Cell::Float(v) => {
            out.push(2);
            put_f64(out, *v);
        }
        Cell::Str(v) => {
            out.push(3);
            put_str(out, v);
        }
        Cell::Timestamp(v) => {
            out.push(4);
            put_i64(out, *v);
        }
    }
}

fn put_batch(out: &mut Vec<u8>, batch: &RowBatch) {
    let view = batch.view();
    debug_assert!(view.n_series() <= MAX_BATCH_SERIES);
    put_u32(out, view.n_series() as u32);
    put_u32(out, view.len() as u32);
    for row in 0..view.len() {
        put_i64(out, view.timestamp(row));
    }
    // Validity bitmap (row-major), then the present values in the same
    // order — 1 bit + 4 bytes per present value instead of 5 bytes each.
    let cells = view.len() * view.n_series();
    let mut bitmap = vec![0u8; cells.div_ceil(8)];
    let mut values = Vec::new();
    for row in 0..view.len() {
        for series in 0..view.n_series() {
            if let Some(value) = view.get(row, series) {
                let bit = row * view.n_series() + series;
                bitmap[bit / 8] |= 1 << (bit % 8);
                values.push(value);
            }
        }
    }
    out.extend_from_slice(&bitmap);
    for value in values {
        put_f32(out, value);
    }
}

// ---------------------------------------------------------------- decoding

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

type Decoded<T> = std::result::Result<T, FrameError>;

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Decoded<&'a [u8]> {
        if self.buf.len() - self.at < n {
            return Err(FrameError::Malformed(format!(
                "truncated payload: wanted {n} bytes at offset {}, frame has {}",
                self.at,
                self.buf.len()
            )));
        }
        let slice = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Decoded<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Decoded<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Decoded<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Decoded<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Decoded<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Decoded<f32> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Decoded<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length-prefixed count of items decoded one by one; the prefix is
    /// sanity-bounded by the remaining payload so a hostile length cannot
    /// drive a huge allocation before decoding fails anyway.
    fn count(&mut self, min_item_bytes: usize) -> Decoded<usize> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.at;
        if n.saturating_mul(min_item_bytes.max(1)) > remaining {
            return Err(FrameError::Malformed(format!(
                "count {n} exceeds remaining payload ({remaining} bytes)"
            )));
        }
        Ok(n)
    }

    fn str(&mut self) -> Decoded<String> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FrameError::Malformed("string is not UTF-8".to_string()))
    }

    fn cell(&mut self) -> Decoded<Cell> {
        Ok(match self.u8()? {
            0 => Cell::Null,
            1 => Cell::Int(self.i64()?),
            2 => Cell::Float(self.f64()?),
            3 => Cell::Str(self.str()?),
            4 => Cell::Timestamp(self.i64()?),
            tag => return Err(FrameError::Malformed(format!("unknown cell tag {tag}"))),
        })
    }

    fn batch(&mut self) -> Decoded<RowBatch> {
        let n_series = self.u32()? as usize;
        let n_rows = self.count(8)?;
        if n_series == 0 {
            return Err(FrameError::Malformed("batch has zero series".to_string()));
        }
        if n_series > MAX_BATCH_SERIES {
            return Err(FrameError::Malformed(format!(
                "batch claims {n_series} series (limit {MAX_BATCH_SERIES})"
            )));
        }
        let mut timestamps = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            timestamps.push(self.i64()?);
        }
        let cells = n_rows * n_series;
        let bitmap = self.take(cells.div_ceil(8))?.to_vec();
        let mut batch = RowBatch::with_capacity(n_series, n_rows);
        let mut row_values: Vec<Option<Value>> = vec![None; n_series];
        for (row, timestamp) in timestamps.into_iter().enumerate() {
            for (series, slot) in row_values.iter_mut().enumerate() {
                let bit = row * n_series + series;
                *slot = if bitmap[bit / 8] >> (bit % 8) & 1 == 1 {
                    Some(self.f32()?)
                } else {
                    None
                };
            }
            batch.push_row(timestamp, &row_values);
        }
        Ok(batch)
    }

    fn finish(self) -> Decoded<()> {
        if self.at != self.buf.len() {
            return Err(FrameError::Malformed(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.at
            )));
        }
        Ok(())
    }
}

// ----------------------------------------------------------- frame payloads

impl Request {
    fn kind(&self) -> u8 {
        match self {
            Request::Hello { .. } => 0x01,
            Request::Sql { .. } => 0x02,
            Request::Prepare { .. } => 0x03,
            Request::ExecPrepared { .. } => 0x04,
            Request::IngestBatch(_) => 0x05,
            Request::IngestPoints(_) => 0x06,
            Request::Flush => 0x07,
            Request::Health => 0x08,
            Request::SetOption { .. } => 0x09,
            Request::Bye => 0x0a,
        }
    }

    /// Serializes the request into a frame payload (kind byte included).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.kind()];
        match self {
            Request::Hello { version } => put_u32(&mut out, *version),
            Request::Sql { text } => put_str(&mut out, text),
            Request::Prepare { name, sql } => {
                put_str(&mut out, name);
                put_str(&mut out, sql);
            }
            Request::ExecPrepared { name } => put_str(&mut out, name),
            Request::IngestBatch(batch) => put_batch(&mut out, batch),
            Request::IngestPoints(points) => {
                put_u32(&mut out, points.len() as u32);
                for (tid, timestamp, value) in points {
                    put_u32(&mut out, *tid);
                    put_i64(&mut out, *timestamp);
                    put_f32(&mut out, *value);
                }
            }
            Request::Flush | Request::Health | Request::Bye => {}
            Request::SetOption { key, value } => {
                put_str(&mut out, key);
                put_str(&mut out, value);
            }
        }
        out
    }

    /// Decodes a frame payload (kind byte included).
    pub fn decode(payload: &[u8]) -> Decoded<Self> {
        let mut r = Reader::new(payload);
        let request = match r.u8()? {
            0x01 => Request::Hello { version: r.u32()? },
            0x02 => Request::Sql { text: r.str()? },
            0x03 => Request::Prepare {
                name: r.str()?,
                sql: r.str()?,
            },
            0x04 => Request::ExecPrepared { name: r.str()? },
            0x05 => Request::IngestBatch(r.batch()?),
            0x06 => {
                let n = r.count(16)?;
                let mut points = Vec::with_capacity(n);
                for _ in 0..n {
                    points.push((r.u32()?, r.i64()?, r.f32()?));
                }
                Request::IngestPoints(points)
            }
            0x07 => Request::Flush,
            0x08 => Request::Health,
            0x09 => Request::SetOption {
                key: r.str()?,
                value: r.str()?,
            },
            0x0a => Request::Bye,
            kind => {
                return Err(FrameError::Malformed(format!(
                    "unknown request kind 0x{kind:02x}"
                )))
            }
        };
        r.finish()?;
        Ok(request)
    }
}

impl Response {
    fn kind(&self) -> u8 {
        match self {
            Response::Hello { .. } => 0x81,
            Response::Ok { .. } => 0x82,
            Response::Error { .. } => 0x83,
            Response::ResultHeader { .. } => 0x84,
            Response::ResultRows { .. } => 0x85,
            Response::ResultEnd { .. } => 0x86,
            Response::Health(_) => 0x87,
        }
    }

    /// Serializes the response into a frame payload (kind byte included).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.kind()];
        match self {
            Response::Hello { version, session } => {
                put_u32(&mut out, *version);
                put_u64(&mut out, *session);
            }
            Response::Ok { info } => put_str(&mut out, info),
            Response::Error { code, message } => {
                out.push(*code as u8);
                put_str(&mut out, message);
            }
            Response::ResultHeader { columns } => {
                put_u16(&mut out, columns.len() as u16);
                for column in columns {
                    put_str(&mut out, column);
                }
            }
            Response::ResultRows { rows } => {
                put_u32(&mut out, rows.len() as u32);
                for row in rows {
                    put_u16(&mut out, row.len() as u16);
                    for cell in row {
                        put_cell(&mut out, cell);
                    }
                }
            }
            Response::ResultEnd { rows } => put_u64(&mut out, *rows),
            Response::Health(health) => {
                put_str(&mut out, &health.backend);
                out.push(health.degraded as u8);
                put_u32(&mut out, health.lost_gids.len() as u32);
                for gid in &health.lost_gids {
                    put_u32(&mut out, *gid);
                }
                put_str(&mut out, &health.detail);
            }
        }
        out
    }

    /// Decodes a frame payload (kind byte included).
    pub fn decode(payload: &[u8]) -> Decoded<Self> {
        let mut r = Reader::new(payload);
        let response = match r.u8()? {
            0x81 => Response::Hello {
                version: r.u32()?,
                session: r.u64()?,
            },
            0x82 => Response::Ok { info: r.str()? },
            0x83 => {
                let code = r.u8()?;
                let code = ErrorCode::from_u8(code)
                    .ok_or_else(|| FrameError::Malformed(format!("unknown error code {code}")))?;
                Response::Error {
                    code,
                    message: r.str()?,
                }
            }
            0x84 => {
                let n = r.u16()? as usize;
                let mut columns = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    columns.push(r.str()?);
                }
                Response::ResultHeader { columns }
            }
            0x85 => {
                let n = r.count(3)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let width = r.u16()? as usize;
                    let mut row = Vec::with_capacity(width.min(1024));
                    for _ in 0..width {
                        row.push(r.cell()?);
                    }
                    rows.push(row);
                }
                Response::ResultRows { rows }
            }
            0x86 => Response::ResultEnd { rows: r.u64()? },
            0x87 => {
                let backend = r.str()?;
                let degraded = r.u8()? != 0;
                let n = r.count(4)?;
                let mut lost_gids = Vec::with_capacity(n);
                for _ in 0..n {
                    lost_gids.push(r.u32()?);
                }
                Response::Health(DatastoreHealth {
                    backend,
                    degraded,
                    lost_gids,
                    detail: r.str()?,
                })
            }
            kind => {
                return Err(FrameError::Malformed(format!(
                    "unknown response kind 0x{kind:02x}"
                )))
            }
        };
        r.finish()?;
        Ok(response)
    }

    /// Splits a query result into the framed stream the server sends:
    /// header, row chunks of [`RESULT_CHUNK_ROWS`], end marker.
    pub fn stream_result(result: QueryResult) -> Vec<Response> {
        let total = result.rows.len() as u64;
        let mut frames = vec![Response::ResultHeader {
            columns: result.columns,
        }];
        let mut rows = result.rows;
        while !rows.is_empty() {
            let rest = rows.split_off(rows.len().min(RESULT_CHUNK_ROWS));
            frames.push(Response::ResultRows { rows });
            rows = rest;
        }
        frames.push(Response::ResultEnd { rows: total });
        frames
    }
}

// ---------------------------------------------------------------- frame i/o

/// Writes one frame (length prefix + payload) to `w`.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(!payload.is_empty() && payload.len() <= MAX_FRAME_BYTES);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame's payload from `r`. Returns `Ok(None)` on a clean EOF at
/// a frame boundary; a stream ending mid-frame is an error.
pub fn read_frame(r: &mut impl std::io::Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame's length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} outside 1..={MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "stream ended inside a frame's payload",
            )
        } else {
            e
        }
    })?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: Request) {
        assert_eq!(Request::decode(&request.encode()).unwrap(), request);
    }

    fn round_trip_response(response: Response) {
        assert_eq!(Response::decode(&response.encode()).unwrap(), response);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello { version: 1 });
        round_trip_request(Request::Sql {
            text: "SELECT COUNT_S(*) FROM Segment".to_string(),
        });
        round_trip_request(Request::Prepare {
            name: "dash".to_string(),
            sql: "SELECT Tid FROM Segment".to_string(),
        });
        round_trip_request(Request::ExecPrepared {
            name: "dash".to_string(),
        });
        round_trip_request(Request::IngestPoints(vec![
            (1, 0, 1.5),
            (2, 100, f32::MIN_POSITIVE / 2.0),
        ]));
        round_trip_request(Request::Flush);
        round_trip_request(Request::Health);
        round_trip_request(Request::SetOption {
            key: "errors".to_string(),
            value: "deferred".to_string(),
        });
        round_trip_request(Request::Bye);
    }

    #[test]
    fn batches_round_trip_with_gaps() {
        let mut batch = RowBatch::new(3);
        batch.push_row(0, &[Some(1.0), None, Some(3.0)]);
        batch.push_row(100, &[None, None, None]);
        batch.push_row(200, &[Some(-0.0), Some(f32::MAX), None]);
        let decoded = match Request::decode(&Request::IngestBatch(batch.clone()).encode()).unwrap()
        {
            Request::IngestBatch(decoded) => decoded,
            other => panic!("decoded {other:?}"),
        };
        assert_eq!(decoded.len(), batch.len());
        assert_eq!(decoded.n_series(), batch.n_series());
        for row in 0..batch.len() {
            assert_eq!(decoded.timestamps()[row], batch.timestamps()[row]);
            for series in 0..batch.n_series() {
                // Compare bit patterns so -0.0 and NaN stay distinguishable.
                assert_eq!(
                    decoded.get(row, series).map(f32::to_bits),
                    batch.get(row, series).map(f32::to_bits)
                );
            }
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        round_trip_response(Response::Hello {
            version: PROTOCOL_VERSION,
            session: 42,
        });
        round_trip_response(Response::Ok {
            info: "flushed".to_string(),
        });
        round_trip_response(Response::Error {
            code: ErrorCode::Query,
            message: "no such column".to_string(),
        });
        round_trip_response(Response::ResultHeader {
            columns: vec!["Tid".to_string(), "SUM_S".to_string()],
        });
        // f64 must survive exactly: subnormals, -0.0, and full precision.
        round_trip_response(Response::ResultRows {
            rows: vec![
                vec![Cell::Int(1), Cell::Float(0.1 + 0.2)],
                vec![Cell::Int(2), Cell::Float(-0.0)],
                vec![
                    Cell::Timestamp(1_609_459_200_000),
                    Cell::Float(f64::MIN_POSITIVE / 2.0),
                ],
                vec![Cell::Str("Aalborg".to_string()), Cell::Null],
            ],
        });
        round_trip_response(Response::ResultEnd { rows: 4 });
        round_trip_response(Response::Health(DatastoreHealth {
            backend: "cluster".to_string(),
            degraded: true,
            lost_gids: vec![3, 9],
            detail: "1/3 workers active".to_string(),
        }));
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicked() {
        for payload in [
            &[][..],                         // empty payload
            &[0xff],                         // unknown request kind
            &[0x02, 10, 0, 0, 0, b'x'],      // string length beyond payload
            &[0x02, 1, 0, 0, 0, 0xf0],       // invalid UTF-8
            &[0x01, 1, 0],                   // truncated u32
            &[0x01, 1, 0, 0, 0, 9],          // trailing byte
            &[0x05, 0, 0, 0, 0, 0, 0, 0, 0], // batch with zero series
        ] {
            assert!(
                matches!(Request::decode(payload), Err(FrameError::Malformed(_))),
                "payload {payload:?}"
            );
        }
        assert!(Response::decode(&[0x83, 99, 0, 0, 0, 0]).is_err()); // unknown error code
    }

    #[test]
    fn hostile_batch_width_is_rejected_before_allocation() {
        // A 9-byte frame claiming u32::MAX series and zero rows: the zero
        // row count means no bitmap or timestamp bytes constrain the claim,
        // so only the width cap stands between this frame and a ~240 GB
        // column allocation.
        let mut huge = vec![0x05];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            Request::decode(&huge),
            Err(FrameError::Malformed(_))
        ));

        // The same claim with one row is rejected by the cap too, before
        // the (absent) bitmap is even looked at.
        let mut wide = vec![0x05];
        wide.extend_from_slice(&u32::MAX.to_le_bytes());
        wide.extend_from_slice(&1u32.to_le_bytes());
        wide.extend_from_slice(&0i64.to_le_bytes());
        assert!(matches!(
            Request::decode(&wide),
            Err(FrameError::Malformed(_))
        ));

        // An honest empty batch with a real width still round-trips.
        let empty = RowBatch::new(16);
        match Request::decode(&Request::IngestBatch(empty).encode()).unwrap() {
            Request::IngestBatch(decoded) => {
                assert_eq!(decoded.len(), 0);
                assert_eq!(decoded.n_series(), 16);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn frame_io_round_trips_and_rejects_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Flush.encode()).unwrap();
        write_frame(&mut buf, &Request::Bye.encode()).unwrap();
        let mut r = &buf[..];
        assert_eq!(
            Request::decode(&read_frame(&mut r).unwrap().unwrap()).unwrap(),
            Request::Flush
        );
        assert_eq!(
            Request::decode(&read_frame(&mut r).unwrap().unwrap()).unwrap(),
            Request::Bye
        );
        assert!(read_frame(&mut r).unwrap().is_none()); // clean EOF

        let huge = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        let zero = 0u32.to_le_bytes();
        assert!(read_frame(&mut &zero[..]).is_err());
        let truncated = [5u8, 0, 0, 0, 0x07]; // claims 5 bytes, has 1
        assert!(read_frame(&mut &truncated[..]).is_err());
    }

    #[test]
    fn result_streaming_chunks_and_reassembles() {
        let mut result = QueryResult::new(vec!["Tid".to_string(), "V".to_string()]);
        for i in 0..(RESULT_CHUNK_ROWS * 2 + 7) {
            result
                .rows
                .push(vec![Cell::Int(i as i64), Cell::Float(i as f64 * 0.5)]);
        }
        let frames = Response::stream_result(result.clone());
        assert_eq!(frames.len(), 2 + 3); // header + 3 chunks + end
        let mut reassembled = QueryResult::default();
        for frame in frames {
            match frame {
                Response::ResultHeader { columns } => reassembled.columns = columns,
                Response::ResultRows { mut rows } => reassembled.rows.append(&mut rows),
                Response::ResultEnd { rows } => assert_eq!(rows, result.rows.len() as u64),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(reassembled, result);
    }

    #[test]
    fn error_codes_cover_every_mdb_error() {
        let errors = [
            MdbError::Config("c".into()),
            MdbError::Ingestion("i".into()),
            MdbError::DeferredIngestion("d".into()),
            MdbError::Corrupt("x".into()),
            MdbError::Query("q".into()),
            MdbError::NotFound("n".into()),
            MdbError::Io(std::io::Error::other("io")),
        ];
        for error in errors {
            let code = ErrorCode::of(&error);
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
            // The reconstructed client error keeps the variant (except the
            // i/o-ish codes, which all surface as Io).
            let back = code.into_error("m".to_string());
            assert_eq!(ErrorCode::of(&back), code);
        }
    }
}

//! A blocking client for the framed wire protocol.

use std::net::{TcpStream, ToSocketAddrs};

use mdb_query::{DatastoreHealth, QueryResult};
use mdb_types::{MdbError, Result, RowBatch, Tid, Timestamp, Value};

use crate::protocol::{read_frame, write_frame, Request, Response, PROTOCOL_VERSION};

/// A connected session. One request is in flight at a time; every method
/// blocks until the server's reply arrives. Typed server-side failures come
/// back as the [`MdbError`] variant the server observed, so remote and
/// in-process callers handle errors identically.
pub struct Client {
    reader: std::io::BufReader<TcpStream>,
    writer: std::io::BufWriter<TcpStream>,
    session: u64,
}

impl Client {
    /// Connects and performs the `Hello` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            reader: std::io::BufReader::new(stream.try_clone()?),
            writer: std::io::BufWriter::new(stream),
            session: 0,
        };
        client.send(&Request::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match client.recv()? {
            Response::Hello { session, .. } => client.session = session,
            other => return Err(unexpected(other)),
        }
        Ok(client)
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Runs one SQL statement, reassembling the streamed result frames.
    pub fn sql(&mut self, text: &str) -> Result<QueryResult> {
        self.send(&Request::Sql {
            text: text.to_string(),
        })?;
        self.recv_result()
    }

    /// Parses and names a statement on the server for this session.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<String> {
        self.send(&Request::Prepare {
            name: name.to_string(),
            sql: sql.to_string(),
        })?;
        self.recv_ok()
    }

    /// Runs a statement prepared earlier in this session.
    pub fn exec_prepared(&mut self, name: &str) -> Result<QueryResult> {
        self.send(&Request::ExecPrepared {
            name: name.to_string(),
        })?;
        self.recv_result()
    }

    /// Ingests a full-width row batch.
    pub fn ingest_batch(&mut self, batch: &RowBatch) -> Result<String> {
        self.send(&Request::IngestBatch(batch.clone()))?;
        self.recv_ok()
    }

    /// Ingests loose points.
    pub fn ingest_points(&mut self, points: &[(Tid, Timestamp, Value)]) -> Result<String> {
        self.send(&Request::IngestPoints(points.to_vec()))?;
        self.recv_ok()
    }

    /// Flushes the datastore so queries see everything ingested so far.
    pub fn flush(&mut self) -> Result<String> {
        self.send(&Request::Flush)?;
        self.recv_ok()
    }

    /// Probes the datastore's health.
    pub fn health(&mut self) -> Result<DatastoreHealth> {
        self.send(&Request::Health)?;
        match self.recv()? {
            Response::Health(health) => Ok(health),
            Response::Error { code, message } => Err(code.into_error(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Sets a session option (`errors` = `strict` | `deferred`).
    pub fn set_option(&mut self, key: &str, value: &str) -> Result<String> {
        self.send(&Request::SetOption {
            key: key.to_string(),
            value: value.to_string(),
        })?;
        self.recv_ok()
    }

    /// Ends the session cleanly.
    pub fn close(mut self) -> Result<()> {
        self.send(&Request::Bye)?;
        self.recv_ok()?;
        Ok(())
    }

    fn send(&mut self, request: &Request) -> Result<()> {
        write_frame(&mut self.writer, &request.encode())?;
        use std::io::Write;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response> {
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            MdbError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        Response::decode(&payload)
            .map_err(|error| MdbError::Corrupt(format!("undecodable response frame: {error:?}")))
    }

    fn recv_ok(&mut self) -> Result<String> {
        match self.recv()? {
            Response::Ok { info } => Ok(info),
            Response::Error { code, message } => Err(code.into_error(message)),
            other => Err(unexpected(other)),
        }
    }

    fn recv_result(&mut self) -> Result<QueryResult> {
        let mut result = match self.recv()? {
            Response::ResultHeader { columns } => QueryResult::new(columns),
            Response::Error { code, message } => return Err(code.into_error(message)),
            other => return Err(unexpected(other)),
        };
        loop {
            match self.recv()? {
                Response::ResultRows { mut rows } => result.rows.append(&mut rows),
                Response::ResultEnd { rows } => {
                    if rows != result.rows.len() as u64 {
                        return Err(MdbError::Corrupt(format!(
                            "result stream ended at {} rows but announced {rows}",
                            result.rows.len()
                        )));
                    }
                    return Ok(result);
                }
                Response::Error { code, message } => return Err(code.into_error(message)),
                other => return Err(unexpected(other)),
            }
        }
    }
}

fn unexpected(response: Response) -> MdbError {
    MdbError::Corrupt(format!("unexpected response frame: {response:?}"))
}

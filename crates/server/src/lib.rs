//! A networked front-end for ModelarDB+.
//!
//! The paper's deployment (Section 4) fronts the storage engine with a
//! Spark-based endpoint; this reproduction stays on its std/crossbeam
//! thread-per-connection stack and instead exposes ingestion and SQL over a
//! small framed TCP protocol:
//!
//! * **Framing** — every message is `[u32 le length][kind][payload]`, capped
//!   at [`protocol::MAX_FRAME_BYTES`] (see [`protocol`] for the frame
//!   catalogue). Floats cross the wire as IEEE-754 bit patterns, so query
//!   results are **bit-identical** to an in-process run.
//! * **Sessions** — each connection is a session with its own prepared
//!   statements and error-consistency option. Query errors come back as
//!   typed error frames; the connection is never dropped just because a
//!   statement failed.
//! * **Admission control** — a connection semaphore bounds concurrent
//!   sessions (excess connections wait in the listen backlog) and a bounded
//!   per-session frame queue bounds pipelined requests (excess bytes wait in
//!   TCP flow control). Overload degrades to blocking, not to OOM.
//! * **Routing** — the server drives any [`Datastore`]:
//!   the embedded engine or the cluster runtime, chosen at startup.
//!
//! ```no_run
//! use mdb_server::{Client, Server, ServerOptions, SharedDatastore};
//! use modelardb::{ModelarDbBuilder, SeriesSpec};
//!
//! let mut builder = ModelarDbBuilder::new();
//! builder.add_series(SeriesSpec::new("s0", 100));
//! builder.add_series(SeriesSpec::new("s1", 100));
//! let engine = builder.build()?;
//!
//! let server = Server::start(SharedDatastore::new(engine), ServerOptions::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! client.ingest_points(&[(0, 0, 1.0), (1, 0, 2.0)])?;
//! client.flush()?;
//! let result = client.sql("SELECT Tid, MIN_S FROM Segment GROUP BY Tid")?;
//! client.close()?;
//! server.shutdown()?;
//! # Ok::<(), mdb_types::MdbError>(())
//! ```

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::{ErrorCode, Request, Response, MAX_FRAME_BYTES, PROTOCOL_VERSION};
pub use server::{Server, ServerOptions};

use std::sync::{Arc, RwLock};

use mdb_query::{Datastore, DatastoreHealth, QueryResult};
use mdb_types::{Result, RowBatch, Tid, Timestamp, Value};

/// A cloneable handle to the one datastore a server (and anything else in
/// the process) serves.
///
/// Reads (`sql`, `health`) take the lock shared, so concurrent sessions
/// query in parallel; mutations take it exclusive, matching the trait's
/// `&mut self` contract. A poisoned lock is ignored — the datastore's own
/// invariants are transactional per call, and refusing service on an
/// unrelated panic would turn one bad session into a full outage.
#[derive(Clone)]
pub struct SharedDatastore {
    inner: Arc<RwLock<Box<dyn Datastore>>>,
}

impl SharedDatastore {
    /// Wraps a datastore (an engine or a cluster).
    pub fn new(datastore: impl Datastore + 'static) -> Self {
        Self::from_boxed(Box::new(datastore))
    }

    /// Wraps an already-boxed datastore.
    pub fn from_boxed(datastore: Box<dyn Datastore>) -> Self {
        Self {
            inner: Arc::new(RwLock::new(datastore)),
        }
    }

    /// The wrapped deployment's name (`"engine"`, `"cluster"`).
    pub fn backend(&self) -> &'static str {
        self.read().backend()
    }

    /// See [`Datastore::ingest_batch`].
    pub fn ingest_batch(&self, batch: &RowBatch) -> Result<()> {
        self.write().ingest_batch(batch)
    }

    /// See [`Datastore::ingest_points`].
    pub fn ingest_points(&self, points: &[(Tid, Timestamp, Value)]) -> Result<()> {
        self.write().ingest_points(points)
    }

    /// See [`Datastore::sql`] (shared lock: queries run concurrently).
    pub fn sql(&self, query: &str) -> Result<QueryResult> {
        self.read().sql(query)
    }

    /// See [`Datastore::flush`].
    pub fn flush(&self) -> Result<()> {
        self.write().flush()
    }

    /// See [`Datastore::health`].
    pub fn health(&self) -> Result<DatastoreHealth> {
        self.read().health()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Box<dyn Datastore>> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Box<dyn Datastore>> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}
